/**
 * @file
 * Fault-tolerance tests: checkpoint journal round trips and torn-tail
 * recovery, kill-and-resume byte equality (fork + abort fault, so the
 * "crash" is a real process death with no unwinding), per-cell
 * timeout/retry/quarantine supervision, graceful drain, and the
 * golden-trace cells resumed across a crash.
 *
 * Every fault point is a deterministic function of a FaultPlan spec
 * and the grid order, so each scenario replays bit-identically.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/checkpoint.hpp"
#include "runner/fault.hpp"
#include "runner/framed_file.hpp"
#include "runner/progress.hpp"
#include "runner/sweep.hpp"
#include "trace/trace_io.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::uint64_t
fileSize(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

// ---------------------------------------------------------------------
// Journal format
// ---------------------------------------------------------------------

runner::JournalPlan
samplePlan()
{
    runner::JournalPlan plan;
    plan.itemCount = 3;
    plan.gridHash = 0xdeadbeefcafef00dull;
    plan.maxInstrs = 123456789ull;
    return plan;
}

runner::JournalJobDone
sampleJob()
{
    runner::JournalJobDone rec;
    rec.jobIndex = 1;
    rec.label = "TPC/libquantum.syn:l1";
    rec.variant = ":l1";
    // Full-64-bit values: a double (JSON number) round trip would
    // corrupt these — the binary journal must not.
    rec.seed = 0xffffffffffffff01ull;
    rec.wallMs = 12.75;

    runner::MetricsRow row;
    row.workload = "libquantum.syn";
    row.prefetcher = "TPC";
    row.variant = ":l1";
    row.seed = 0x8000000000000001ull;
    row.baselineIpc = 0.12345678901234567;
    row.ipc = 1.5;
    row.speedup = row.ipc / row.baselineIpc;
    row.baselineMpkiL1 = 33.25;
    row.prefetchesIssued = (1ull << 53) + 1; // not a double
    row.scope = 0.875;
    row.effAccuracyL1 = 0.5;
    row.effCoverageL1 = 0.25;
    row.effAccuracyL2 = -0.125;
    row.effCoverageL2 = 0.0625;
    row.trafficNormalized = 1.03125;
    row.instructions = 987654321ull;
    row.counters.set("t2", "streams", 42);
    row.counters.set("core", "cycles", (1ull << 62) + 7);
    row.counters.set("trace", "bytes_fnv64", 0xabcdef0123456789ull);
    rec.rows.push_back(std::move(row));
    return rec;
}

void
expectJobEqual(const runner::JournalJobDone &actual,
               const runner::JournalJobDone &expected)
{
    EXPECT_EQ(actual.jobIndex, expected.jobIndex);
    EXPECT_EQ(actual.label, expected.label);
    EXPECT_EQ(actual.variant, expected.variant);
    EXPECT_EQ(actual.seed, expected.seed);
    EXPECT_EQ(actual.wallMs, expected.wallMs);
    ASSERT_EQ(actual.rows.size(), expected.rows.size());
    for (std::size_t i = 0; i < actual.rows.size(); ++i) {
        const runner::MetricsRow &a = actual.rows[i];
        const runner::MetricsRow &e = expected.rows[i];
        EXPECT_EQ(a.workload, e.workload);
        EXPECT_EQ(a.prefetcher, e.prefetcher);
        EXPECT_EQ(a.variant, e.variant);
        EXPECT_EQ(a.seed, e.seed);
        EXPECT_EQ(a.baselineIpc, e.baselineIpc); // bit-exact, not near
        EXPECT_EQ(a.ipc, e.ipc);
        EXPECT_EQ(a.speedup, e.speedup);
        EXPECT_EQ(a.baselineMpkiL1, e.baselineMpkiL1);
        EXPECT_EQ(a.prefetchesIssued, e.prefetchesIssued);
        EXPECT_EQ(a.scope, e.scope);
        EXPECT_EQ(a.effAccuracyL1, e.effAccuracyL1);
        EXPECT_EQ(a.effCoverageL1, e.effCoverageL1);
        EXPECT_EQ(a.effAccuracyL2, e.effAccuracyL2);
        EXPECT_EQ(a.effCoverageL2, e.effCoverageL2);
        EXPECT_EQ(a.trafficNormalized, e.trafficNormalized);
        EXPECT_EQ(a.instructions, e.instructions);
        EXPECT_EQ(a.counters.entries(), e.counters.entries());
        EXPECT_EQ(a.counters.toText(), e.counters.toText());
    }
}

TEST(CheckpointJournal, RoundTripsPlanJobsAndCases)
{
    const std::string path = tempPath("ckpt_roundtrip.bin");
    std::remove(path.c_str());

    const runner::JournalPlan plan = samplePlan();
    const runner::JournalJobDone rec = sampleJob();
    {
        runner::CheckpointJournal journal;
        std::string error;
        ASSERT_TRUE(journal.create(path, plan, &error)) << error;
        ASSERT_TRUE(journal.appendJobDone(rec));
        ASSERT_TRUE(journal.appendCaseDone(7));
        ASSERT_TRUE(journal.appendCaseDone(0));
    }

    const auto loaded = runner::CheckpointJournal::load(path);
    EXPECT_TRUE(loaded.fileExists);
    EXPECT_TRUE(loaded.valid) << loaded.error;
    EXPECT_TRUE(loaded.cleanTail);
    EXPECT_EQ(loaded.goodBytes, fileSize(path));
    ASSERT_TRUE(loaded.plan.has_value());
    EXPECT_TRUE(*loaded.plan == plan);
    ASSERT_EQ(loaded.jobs.size(), 1u);
    expectJobEqual(loaded.jobs[0], rec);
    ASSERT_EQ(loaded.cases.size(), 2u);
    EXPECT_EQ(loaded.cases[0], 7u);
    EXPECT_EQ(loaded.cases[1], 0u);
}

TEST(CheckpointJournal, MissingFileAndGarbageFile)
{
    const auto missing =
        runner::CheckpointJournal::load(tempPath("ckpt_missing.bin"));
    EXPECT_FALSE(missing.fileExists);
    EXPECT_FALSE(missing.valid);

    const std::string path = tempPath("ckpt_garbage.bin");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "definitely not a checkpoint journal";
    }
    const auto garbage = runner::CheckpointJournal::load(path);
    EXPECT_TRUE(garbage.fileExists);
    EXPECT_FALSE(garbage.valid);
    EXPECT_FALSE(garbage.error.empty());
}

TEST(CheckpointJournal, TornTailIsDroppedAndTruncatedOnResume)
{
    const std::string path = tempPath("ckpt_torn.bin");
    std::remove(path.c_str());

    const runner::JournalPlan plan = samplePlan();
    const runner::JournalJobDone rec = sampleJob();
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.create(path, plan));
        ASSERT_TRUE(journal.appendJobDone(rec));
    }
    const std::uint64_t clean_bytes = fileSize(path);

    // A crash mid-append leaves a torn tail: simulate with garbage.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "\x02torn";
    }
    auto loaded = runner::CheckpointJournal::load(path);
    EXPECT_TRUE(loaded.valid);
    EXPECT_FALSE(loaded.cleanTail);
    EXPECT_EQ(loaded.goodBytes, clean_bytes);
    ASSERT_EQ(loaded.jobs.size(), 1u); // prior record survives
    expectJobEqual(loaded.jobs[0], rec);

    // Resume truncates the tail before appending; the journal is
    // whole again afterwards.
    {
        runner::CheckpointJournal journal;
        std::string error;
        ASSERT_TRUE(
            journal.openAppend(path, loaded.goodBytes, &error))
            << error;
        ASSERT_TRUE(journal.appendCaseDone(5));
    }
    loaded = runner::CheckpointJournal::load(path);
    EXPECT_TRUE(loaded.valid);
    EXPECT_TRUE(loaded.cleanTail);
    ASSERT_EQ(loaded.jobs.size(), 1u);
    ASSERT_EQ(loaded.cases.size(), 1u);
    EXPECT_EQ(loaded.cases[0], 5u);
}

TEST(CheckpointJournal, TruncatedMidRecordKeepsPriorRecords)
{
    const std::string path = tempPath("ckpt_chopped.bin");
    std::remove(path.c_str());
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.create(path, samplePlan()));
        ASSERT_TRUE(journal.appendCaseDone(1));
        ASSERT_TRUE(journal.appendCaseDone(2));
    }
    const std::uint64_t full = fileSize(path);
    // Chop into the last record (its 8-byte payload sits at the end).
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    ASSERT_EQ(bytes.size(), full);
    bytes.resize(bytes.size() - 3);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    const auto loaded = runner::CheckpointJournal::load(path);
    EXPECT_TRUE(loaded.valid);
    EXPECT_FALSE(loaded.cleanTail);
    ASSERT_EQ(loaded.cases.size(), 1u);
    EXPECT_EQ(loaded.cases[0], 1u);
}

// ---------------------------------------------------------------------
// Sweep supervision: crash, resume, retry, timeout, quarantine, drain
// ---------------------------------------------------------------------

/** 4-cell grid (2 workloads x 2 prefetchers), small budget. */
runner::SweepRunner
makeGridSweep(runner::SweepOptions options)
{
    SimConfig config;
    config.maxInstrs = 4000;
    options.progress = false;
    runner::SweepRunner sweep(config, std::move(options));
    sweep.addGrid(
        {findWorkload("libquantum.syn"), findWorkload("mcf.syn")},
        {"TPC", "SPP"});
    return sweep;
}

/**
 * Run @p body in a forked child (gtest's process is single-threaded
 * here, so fork without exec is safe) and return its wait status. The
 * abort fault _Exit()s the child exactly like SIGKILL would — nothing
 * is flushed, nothing unwinds.
 */
template <typename Body>
int
runInChild(Body body)
{
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid == 0) {
        body();
        std::_Exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return status;
}

TEST(FaultTolerance, ResumeAfterCrashMatchesUninterruptedByteForByte)
{
    for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));

        runner::SweepOptions base_options;
        base_options.jobs = jobs;
        auto baseline_sweep = makeGridSweep(base_options);
        const auto baseline = baseline_sweep.run();
        const std::string baseline_results =
            baseline.store.resultsJson();
        const std::string baseline_csv = baseline.store.toCsv();

        const std::string ckpt =
            tempPath("ckpt_crash_j" + std::to_string(jobs) + ".bin");
        std::remove(ckpt.c_str());

        runner::FaultPlan plan;
        ASSERT_TRUE(runner::FaultPlan::parse("abort@2", plan));

        const int status = runInChild([&] {
            runner::SweepOptions options;
            options.jobs = jobs;
            options.checkpointPath = ckpt;
            options.faultPlan = &plan;
            auto sweep = makeGridSweep(options);
            (void)sweep.run(); // dies at cell 2
        });
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 137);

        runner::SweepOptions resume_options;
        resume_options.jobs = jobs;
        resume_options.checkpointPath = ckpt;
        resume_options.resume = true;
        auto resumed_sweep = makeGridSweep(resume_options);
        const auto resumed = resumed_sweep.run();

        EXPECT_FALSE(resumed.interrupted);
        EXPECT_TRUE(resumed.meta.failedCells.empty());
        if (jobs == 1) {
            // Sequential: cells 0 and 1 journaled before the crash.
            EXPECT_EQ(resumed.meta.resumedJobs, 2u);
        }
        EXPECT_EQ(resumed.store.resultsJson(), baseline_results);
        EXPECT_EQ(resumed.store.toCsv(), baseline_csv);
    }
}

TEST(FaultTolerance, FaultIndexDerivedFromSeedIsDeterministic)
{
    // SplitMix64 step: the kill point is a pure function of the seed,
    // so this scenario replays bit-identically from "seed 0xD01".
    std::uint64_t z = 0xD01 + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    const std::size_t kill_cell = static_cast<std::size_t>(
        (z ^ (z >> 31)) % 3 + 1); // in [1, 3]: never the first cell

    auto baseline_sweep = makeGridSweep({});
    const std::string baseline_results =
        baseline_sweep.run().store.resultsJson();

    const std::string ckpt = tempPath("ckpt_seeded.bin");
    std::remove(ckpt.c_str());
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse(
        "abort@" + std::to_string(kill_cell), plan));

    const int status = runInChild([&] {
        runner::SweepOptions options;
        options.jobs = 1;
        options.checkpointPath = ckpt;
        options.faultPlan = &plan;
        auto sweep = makeGridSweep(options);
        (void)sweep.run();
    });
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 137);

    const auto loaded = runner::CheckpointJournal::load(ckpt);
    ASSERT_TRUE(loaded.valid);
    EXPECT_EQ(loaded.jobs.size(), kill_cell); // cells [0, kill_cell)

    runner::SweepOptions resume_options;
    resume_options.jobs = 1;
    resume_options.checkpointPath = ckpt;
    resume_options.resume = true;
    auto resumed_sweep = makeGridSweep(resume_options);
    const auto resumed = resumed_sweep.run();
    EXPECT_EQ(resumed.meta.resumedJobs, kill_cell);
    EXPECT_EQ(resumed.store.resultsJson(), baseline_results);
}

TEST(FaultTolerance, ResumeRefusesMismatchedGrid)
{
    const std::string ckpt = tempPath("ckpt_mismatch.bin");
    std::remove(ckpt.c_str());
    {
        runner::SweepOptions options;
        options.checkpointPath = ckpt;
        auto sweep = makeGridSweep(options);
        (void)sweep.run();
    }
    // Same checkpoint, different grid: must refuse, not merge.
    SimConfig config;
    config.maxInstrs = 4000;
    runner::SweepOptions options;
    options.progress = false;
    options.checkpointPath = ckpt;
    options.resume = true;
    runner::SweepRunner sweep(config, options);
    sweep.addGrid({findWorkload("libquantum.syn")}, {"TPC"});
    EXPECT_THROW((void)sweep.run(), std::runtime_error);
}

TEST(FaultTolerance, RetrySucceedsAfterTransientFault)
{
    // throw@1:1 fails the first attempt of cell 1 only; with one
    // retry the sweep completes with no failed cells.
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("throw@1:1", plan));
    runner::SweepOptions options;
    options.retries = 1;
    options.retryBackoffMs = 1.0;
    options.faultPlan = &plan;
    auto sweep = makeGridSweep(options);
    const auto report = sweep.run();
    EXPECT_FALSE(report.interrupted);
    EXPECT_TRUE(report.meta.failedCells.empty());
    EXPECT_EQ(report.store.rows().size(), 4u);
}

TEST(FaultTolerance, ExhaustedRetriesQuarantineTheCell)
{
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("throw@1", plan));
    runner::SweepOptions options;
    options.retries = 2;
    options.retryBackoffMs = 1.0;
    options.onError = runner::SweepOptions::OnError::kQuarantine;
    options.faultPlan = &plan;
    auto sweep = makeGridSweep(options);
    const auto report = sweep.run();

    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.store.rows().size(), 3u); // sweep completed
    ASSERT_EQ(report.meta.failedCells.size(), 1u);
    const runner::FailedCell &cell = report.meta.failedCells[0];
    EXPECT_EQ(cell.label, "SPP/libquantum.syn");
    EXPECT_EQ(cell.attempts, 3u); // first run + 2 retries
    EXPECT_EQ(cell.kind, "error");
    EXPECT_NE(cell.error.find("injected fault"), std::string::npos);

    // The quarantine surfaces in the document's failed_cells section.
    const std::string json = report.store.toJson(report.meta);
    EXPECT_NE(json.find("\"failed_cells\": ["), std::string::npos);
    EXPECT_NE(json.find("\"SPP/libquantum.syn\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"error\""), std::string::npos);
}

TEST(FaultTolerance, CleanRunDocumentHasNoFailedCellsSection)
{
    auto sweep = makeGridSweep({});
    const auto report = sweep.run();
    const std::string json = report.store.toJson(report.meta);
    EXPECT_EQ(json.find("failed_cells"), std::string::npos);
}

TEST(FaultTolerance, HangingCellTimesOutAndIsQuarantined)
{
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("hang@1", plan));
    runner::SweepOptions options;
    options.cellTimeoutMs = 150.0;
    options.onError = runner::SweepOptions::OnError::kQuarantine;
    options.faultPlan = &plan;
    auto sweep = makeGridSweep(options);
    const auto report = sweep.run();

    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.store.rows().size(), 3u);
    ASSERT_EQ(report.meta.failedCells.size(), 1u);
    EXPECT_EQ(report.meta.failedCells[0].kind, "timeout");
    EXPECT_EQ(report.meta.failedCells[0].attempts, 1u);
}

TEST(FaultTolerance, PropagateModeRethrowsInjectedFault)
{
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("throw@0", plan));
    runner::SweepOptions options;
    options.faultPlan = &plan; // default OnError::kPropagate
    auto sweep = makeGridSweep(options);
    EXPECT_THROW((void)sweep.run(), std::runtime_error);
}

TEST(FaultTolerance, StopFaultDrainsAndResumeCompletes)
{
    auto baseline_sweep = makeGridSweep({});
    const std::string baseline_results =
        baseline_sweep.run().store.resultsJson();

    const std::string ckpt = tempPath("ckpt_drain.bin");
    std::remove(ckpt.c_str());
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("stop@1", plan));

    runner::SweepOptions options;
    options.jobs = 1;
    options.checkpointPath = ckpt;
    options.faultPlan = &plan;
    auto sweep = makeGridSweep(options);
    const auto drained = sweep.run();

    // The stop fault models SIGTERM as cell 1 starts: cell 1 (in
    // flight) finishes and journals, cells 2..3 are skipped.
    EXPECT_TRUE(drained.interrupted);
    EXPECT_EQ(drained.store.rows().size(), 2u);
    const auto loaded = runner::CheckpointJournal::load(ckpt);
    ASSERT_TRUE(loaded.valid);
    EXPECT_EQ(loaded.jobs.size(), 2u);

    runner::SweepOptions resume_options;
    resume_options.jobs = 1;
    resume_options.checkpointPath = ckpt;
    resume_options.resume = true;
    auto resumed_sweep = makeGridSweep(resume_options);
    const auto resumed = resumed_sweep.run();
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.meta.resumedJobs, 2u);
    EXPECT_EQ(resumed.store.resultsJson(), baseline_results);
}

TEST(FaultTolerance, ExternalStopFlagSkipsQueuedJobs)
{
    std::atomic<bool> stop{true}; // raised before the sweep starts
    runner::SweepOptions options;
    options.jobs = 1;
    options.stopFlag = &stop;
    auto sweep = makeGridSweep(options);
    const auto report = sweep.run();
    EXPECT_TRUE(report.interrupted);
    EXPECT_TRUE(report.store.rows().empty());
    EXPECT_TRUE(report.outputs.empty());
}

// ---------------------------------------------------------------------
// Golden-trace cells across a kill + resume
// ---------------------------------------------------------------------

struct GoldenCell
{
    const char *workload;
    const char *prefetcher;
};

/** Same cells and budget as test_golden_trace.cpp. */
constexpr std::uint64_t kGoldenInstrs = 20000;
const GoldenCell kGoldenCells[] = {
    {"libquantum.syn", "TPC"}, {"mcf.syn", "TPC"},
    {"omnetpp.syn", "TPC"},    {"bfs.syn", "TPC"},
    {"libquantum.syn", "SPP"},
};

std::string
goldenTracePath(const GoldenCell &cell)
{
    return tempPath(std::string("ckpt_golden.") + cell.workload + "." +
                    cell.prefetcher + ".trc");
}

runner::SweepRunner
makeGoldenSweep(runner::SweepOptions options)
{
    SimConfig config;
    config.maxInstrs = kGoldenInstrs;
    options.jobs = 1;
    options.progress = false;
    runner::SweepRunner sweep(config, std::move(options));
    for (const GoldenCell &cell : kGoldenCells) {
        RunOptions run_options;
        run_options.collectCounters = true;
        run_options.tracePath = goldenTracePath(cell);
        sweep.addCell(findWorkload(cell.workload), cell.prefetcher,
                      std::move(run_options));
    }
    return sweep;
}

std::uint64_t
counterValue(const runner::MetricsRow &row, const std::string &scope,
             const std::string &name, bool &found)
{
    for (const auto &[s, n, value] : row.counters.entries()) {
        if (s == scope && n == name) {
            found = true;
            return value;
        }
    }
    found = false;
    return 0;
}

TEST(FaultTolerance, GoldenCellsSurviveKillAndResume)
{
    // Kill a traced 5-cell sweep after cell 2 (cells 0-2 journaled,
    // their DOLTRC01 files already closed), resume, and hold the
    // merged result to the same bar as an uninterrupted run: every
    // per-cell counter snapshot must match tests/golden byte for
    // byte, and every trace file's recomputed digest must match the
    // trace.bytes_fnv64 its cell recorded.
    for (const GoldenCell &cell : kGoldenCells)
        std::remove(goldenTracePath(cell).c_str());
    const std::string ckpt = tempPath("ckpt_golden.bin");
    std::remove(ckpt.c_str());

    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("abort@3", plan));
    const int status = runInChild([&] {
        runner::SweepOptions options;
        options.checkpointPath = ckpt;
        options.faultPlan = &plan;
        auto sweep = makeGoldenSweep(options);
        (void)sweep.run();
    });
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);
    {
        const auto loaded = runner::CheckpointJournal::load(ckpt);
        ASSERT_TRUE(loaded.valid);
        ASSERT_EQ(loaded.jobs.size(), 3u);
    }

    runner::SweepOptions resume_options;
    resume_options.checkpointPath = ckpt;
    resume_options.resume = true;
    auto sweep = makeGoldenSweep(resume_options);
    const auto report = sweep.run();
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(report.meta.resumedJobs, 3u);
    const auto rows = report.store.rows();
    ASSERT_EQ(rows.size(), 5u);

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const GoldenCell &cell = kGoldenCells[i];
        SCOPED_TRACE(std::string(cell.workload) + "/" +
                     cell.prefetcher);

        // Counter snapshot, exactly as test_golden_trace renders it.
        std::string fresh = "dol-golden-v1 ";
        fresh += cell.workload;
        fresh += ' ';
        fresh += cell.prefetcher;
        fresh += " instrs=" + std::to_string(kGoldenInstrs) + "\n";
        fresh += rows[i].counters.toText();

        const std::string golden_path = std::string(DOL_GOLDEN_DIR) +
                                        "/" + cell.workload + "." +
                                        cell.prefetcher + ".golden";
        std::ifstream in(golden_path, std::ios::binary);
        ASSERT_TRUE(in.good()) << "missing " << golden_path;
        std::ostringstream golden;
        golden << in.rdbuf();
        EXPECT_EQ(golden.str(), fresh);

        // Trace file digest: recompute FNV-1a over the record bytes
        // (after the 16-byte header) and compare with the counter the
        // cell recorded before the kill / after the resume.
        std::ifstream trc(goldenTracePath(cell), std::ios::binary);
        ASSERT_TRUE(trc.good()) << "missing trace for cell " << i;
        std::ostringstream trace_bytes;
        trace_bytes << trc.rdbuf();
        const std::string &bytes = trace_bytes.str();
        ASSERT_GT(bytes.size(), kTraceHeaderBytes);
        const std::uint64_t digest =
            fnv64(bytes.data() + kTraceHeaderBytes,
                  bytes.size() - kTraceHeaderBytes);
        bool found = false;
        const std::uint64_t recorded =
            counterValue(rows[i], "trace", "bytes_fnv64", found);
        ASSERT_TRUE(found);
        EXPECT_EQ(digest, recorded);
    }
    for (const GoldenCell &cell : kGoldenCells)
        std::remove(goldenTracePath(cell).c_str());
}

// ---------------------------------------------------------------------
// Multi-journal regressions: the fleet reads journals it did not
// write, so the loader must tolerate records it does not know and
// must never manufacture progress from records it cannot decode.
// ---------------------------------------------------------------------

TEST(CheckpointJournal, UnknownRecordTypesAreSkippedNotTruncated)
{
    const std::string path = tempPath("ckpt_unknown.bin");
    std::remove(path.c_str());
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.create(path, samplePlan()));
        ASSERT_TRUE(journal.appendCaseDone(1));
    }
    // A record type from a future tool version, checksum intact.
    {
        runner::FramedWriter writer;
        std::string error;
        ASSERT_TRUE(writer.openAppend(path, fileSize(path), &error))
            << error;
        ASSERT_TRUE(writer.appendRecord(200, "from-the-future"));
    }

    auto loaded = runner::CheckpointJournal::load(path);
    ASSERT_TRUE(loaded.valid) << loaded.error;
    EXPECT_TRUE(loaded.cleanTail) << "unknown is not torn";
    EXPECT_EQ(loaded.goodBytes, fileSize(path))
        << "the clean prefix must span the unknown record, or a "
           "resuming writer would truncate it mid-file";
    ASSERT_EQ(loaded.cases.size(), 1u);

    // Appending through the journal keeps the unknown record whole.
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.openAppend(path, loaded.goodBytes));
        ASSERT_TRUE(journal.appendCaseDone(2));
    }
    loaded = runner::CheckpointJournal::load(path);
    ASSERT_TRUE(loaded.valid);
    EXPECT_TRUE(loaded.cleanTail);
    EXPECT_EQ(loaded.cases,
              (std::vector<std::uint64_t>{1, 2}));
}

TEST(CheckpointJournal, UndecodablePayloadEndsCleanPrefixNotACase)
{
    const std::string path = tempPath("ckpt_phantom.bin");
    std::remove(path.c_str());
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.create(path, samplePlan()));
        ASSERT_TRUE(journal.appendCaseDone(1));
    }
    const std::uint64_t before = fileSize(path);
    // A kCaseDone whose checksum verifies but whose payload is 3
    // bytes (an index needs 8): as suspect as a torn tail.
    {
        runner::FramedWriter writer;
        ASSERT_TRUE(writer.openAppend(path, before, nullptr));
        ASSERT_TRUE(writer.appendRecord(
            static_cast<std::uint8_t>(
                runner::JournalRecord::kCaseDone),
            "abc"));
    }

    const auto loaded = runner::CheckpointJournal::load(path);
    ASSERT_TRUE(loaded.valid);
    EXPECT_FALSE(loaded.cleanTail);
    EXPECT_EQ(loaded.goodBytes, before)
        << "a resuming writer must truncate the undecodable record";
    ASSERT_EQ(loaded.cases.size(), 1u)
        << "no phantom case may be manufactured from the payload";
    EXPECT_EQ(loaded.cases[0], 1u);
}

TEST(CheckpointJournal, CellFailedRecordsRoundTrip)
{
    const std::string path = tempPath("ckpt_cellfailed.bin");
    std::remove(path.c_str());

    runner::JournalCellFailed failed;
    failed.jobIndex = 2;
    failed.cell.label = "TPC/mcf.syn";
    failed.cell.variant = ":v1";
    failed.cell.seed = 0xfeedfacefeedfaceull;
    failed.cell.attempts = 3;
    failed.cell.kind = "timeout";
    failed.cell.error = "cell deadline expired";
    {
        runner::CheckpointJournal journal;
        ASSERT_TRUE(journal.create(path, samplePlan()));
        ASSERT_TRUE(journal.appendJobDone(sampleJob()));
        ASSERT_TRUE(journal.appendCellFailed(failed));
    }

    const auto loaded = runner::CheckpointJournal::load(path);
    ASSERT_TRUE(loaded.valid) << loaded.error;
    EXPECT_TRUE(loaded.cleanTail);
    ASSERT_EQ(loaded.jobs.size(), 1u);
    ASSERT_EQ(loaded.failedCells.size(), 1u);
    const runner::JournalCellFailed &got = loaded.failedCells[0];
    EXPECT_EQ(got.jobIndex, failed.jobIndex);
    EXPECT_EQ(got.cell.label, failed.cell.label);
    EXPECT_EQ(got.cell.variant, failed.cell.variant);
    EXPECT_EQ(got.cell.seed, failed.cell.seed);
    EXPECT_EQ(got.cell.attempts, failed.cell.attempts);
    EXPECT_EQ(got.cell.kind, failed.cell.kind);
    EXPECT_EQ(got.cell.error, failed.cell.error);
}

TEST(FaultTolerance, ResumeReRunsJournaledFailedCells)
{
    runner::SweepOptions base_options;
    base_options.jobs = 1;
    auto baseline_sweep = makeGridSweep(base_options);
    const std::string baseline_results =
        baseline_sweep.run().store.resultsJson();

    const std::string ckpt = tempPath("ckpt_failed_resume.bin");
    std::remove(ckpt.c_str());
    runner::FaultPlan plan;
    ASSERT_TRUE(runner::FaultPlan::parse("throw@2", plan));
    {
        runner::SweepOptions options;
        options.jobs = 1;
        options.checkpointPath = ckpt;
        options.onError = runner::SweepOptions::OnError::kQuarantine;
        options.journalFailures = true;
        options.faultPlan = &plan;
        auto sweep = makeGridSweep(options);
        const auto report = sweep.run();
        ASSERT_EQ(report.meta.failedCells.size(), 1u);
    }
    const auto journal = runner::CheckpointJournal::load(ckpt);
    ASSERT_TRUE(journal.valid) << journal.error;
    EXPECT_TRUE(journal.cleanTail);
    ASSERT_EQ(journal.failedCells.size(), 1u);
    EXPECT_EQ(journal.failedCells[0].jobIndex, 2u);
    EXPECT_EQ(journal.jobs.size(), 3u);

    // Resume without the fault: the journaled failure does not count
    // as done, so the cell re-runs, succeeds, and the document
    // completes byte-identical to the uninterrupted baseline.
    runner::SweepOptions resume_options;
    resume_options.jobs = 1;
    resume_options.checkpointPath = ckpt;
    resume_options.resume = true;
    auto resumed_sweep = makeGridSweep(resume_options);
    const auto resumed = resumed_sweep.run();
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_TRUE(resumed.meta.failedCells.empty());
    EXPECT_EQ(resumed.meta.resumedJobs, 3u);
    EXPECT_EQ(resumed.store.resultsJson(), baseline_results);
}

} // namespace
