/**
 * @file
 * Unit tests for the set-associative cache model: geometry, LRU
 * replacement, line metadata, and the MSHR file.
 */

#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace dol
{
namespace
{

Cache::Params
smallCache(std::uint32_t size = 4096, std::uint32_t assoc = 4)
{
    Cache::Params params;
    params.name = "test";
    params.sizeBytes = size;
    params.assoc = assoc;
    params.latency = 3;
    params.mshrs = 4;
    return params;
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallCache());
    EXPECT_EQ(cache.find(0x1000), nullptr);
    Cache::Line *line = nullptr;
    auto victim = cache.insert(0x1000, &line);
    EXPECT_FALSE(victim.has_value());
    ASSERT_NE(cache.find(0x1000), nullptr);
    EXPECT_EQ(cache.find(0x1000)->tag, 0x1000u);
    // Any byte within the line hits.
    EXPECT_NE(cache.find(0x103f), nullptr);
    EXPECT_EQ(cache.find(0x1040), nullptr);
}

TEST(Cache, LruEvictsOldest)
{
    // 4 sets x 4 ways; lines mapping to set 0 are 256B apart.
    Cache cache(smallCache(1024, 4));
    EXPECT_EQ(cache.numSets(), 4u);

    Cache::Line *line = nullptr;
    for (Addr i = 0; i < 4; ++i)
        cache.insert(i * 256, &line);
    // Touch line 0 so line 256 becomes LRU.
    cache.touch(*cache.find(0));

    auto victim = cache.insert(4 * 256, &line);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 256u);
    EXPECT_NE(cache.find(0), nullptr);
    EXPECT_EQ(cache.find(256), nullptr);
}

TEST(Cache, VictimCarriesMetadata)
{
    Cache cache(smallCache(512, 2));
    Cache::Line *line = nullptr;
    cache.insert(0x0, &line);
    line->dirty = true;
    line->prefetched = true;
    line->comp = 5;
    const auto sets = cache.numSets();
    cache.insert(sets * kLineBytes, &line);

    auto victim = cache.insert(2 * sets * kLineBytes, &line);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_TRUE(victim->prefetched);
    EXPECT_FALSE(victim->used);
    EXPECT_EQ(victim->comp, 5);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache(smallCache());
    Cache::Line *line = nullptr;
    cache.insert(0x2000, &line);
    EXPECT_TRUE(cache.invalidate(0x2000));
    EXPECT_EQ(cache.find(0x2000), nullptr);
    EXPECT_FALSE(cache.invalidate(0x2000));
}

TEST(Cache, PrefetchedCompsInSet)
{
    Cache cache(smallCache(1024, 4));
    Cache::Line *line = nullptr;
    cache.insert(0, &line);
    line->prefetched = true;
    line->comp = 2;
    cache.insert(256, &line);
    line->prefetched = true;
    line->comp = 3;
    cache.insert(512, &line); // demand line

    std::vector<ComponentId> comps;
    cache.prefetchedCompsInSet(0, comps);
    EXPECT_EQ(comps.size(), 2u);
    // A different set is empty.
    cache.prefetchedCompsInSet(64, comps);
    EXPECT_TRUE(comps.empty());
}

TEST(Cache, MshrTracksPendingFetches)
{
    Cache cache(smallCache());
    EXPECT_EQ(cache.pendingEntry(0x1000, 0), nullptr);
    cache.addMshr(0x1000, 100);
    ASSERT_NE(cache.pendingEntry(0x1000, 50), nullptr);
    EXPECT_EQ(cache.pendingCompletion(0x1000, 50), 100u);
    // Expired entries no longer match.
    EXPECT_EQ(cache.pendingEntry(0x1000, 100), nullptr);
}

TEST(Cache, MshrFullAndLiveCount)
{
    Cache cache(smallCache());
    for (Addr i = 0; i < 4; ++i)
        cache.addMshr(0x1000 + i * 64, 200 + i);
    EXPECT_TRUE(cache.mshrFull(100));
    EXPECT_EQ(cache.liveMshrCount(100), 4u);
    EXPECT_EQ(cache.earliestMshrFree(), 200u);
    EXPECT_FALSE(cache.mshrFull(200));
    EXPECT_EQ(cache.liveMshrCount(201), 2u);
}

TEST(Cache, StealPrefersMostSpeculativePrefetch)
{
    Cache cache(smallCache());
    cache.addMshr(0x1000, 300, 1, true);
    cache.addMshr(0x2000, 500, 2, true);
    cache.addMshr(0x3000, 400, kNoComponent, false); // demand
    EXPECT_TRUE(cache.stealPrefetchMshr(100));
    // The completion-500 prefetch went first.
    EXPECT_EQ(cache.pendingEntry(0x2000, 100), nullptr);
    ASSERT_NE(cache.pendingEntry(0x1000, 100), nullptr);
    EXPECT_TRUE(cache.stealPrefetchMshr(100));
    // Only the demand remains: no more steals.
    EXPECT_FALSE(cache.stealPrefetchMshr(100));
    EXPECT_NE(cache.pendingEntry(0x3000, 100), nullptr);
}

/** LRU order property across associativities. */
class CacheAssocSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheAssocSweep, FullSetEvictsInInsertionOrderWithoutTouches)
{
    const std::uint32_t assoc = GetParam();
    Cache cache(smallCache(kLineBytes * assoc, assoc)); // one set
    Cache::Line *line = nullptr;
    for (Addr i = 0; i < assoc; ++i)
        EXPECT_FALSE(cache.insert(i * kLineBytes, &line).has_value());
    for (Addr i = 0; i < assoc; ++i) {
        auto victim = cache.insert((assoc + i) * kLineBytes, &line);
        ASSERT_TRUE(victim.has_value());
        EXPECT_EQ(victim->lineAddr, i * kLineBytes);
    }
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheAssocSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace dol
