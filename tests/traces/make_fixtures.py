#!/usr/bin/env python3
"""Regenerate the committed ChampSim trace fixtures.

The fixtures are deliberately tiny (well under 100KB each) and fully
deterministic: running this script always reproduces the committed
bytes, so the golden cell pinned to stream_gups.champsim never moves
unless the generator changes on purpose.

  stream_gups.champsim     strided streams interleaved with seeded
                           random updates (GUPS-style), plain format
  linked_walk.champsim.xz  repeated pointer-style walks over a small
                           shuffled node set, xz-compressed (the
                           format real ChampSim traces ship in)

Usage: python3 make_fixtures.py   (from this directory)
"""

import struct
import subprocess
from pathlib import Path

HERE = Path(__file__).resolve().parent
RECORD = struct.Struct("<QBB2B4s2Q4Q")


def record(ip, is_branch=0, taken=0, dest_regs=(0, 0),
           src_regs=(0, 0, 0, 0), dest_mem=(0, 0),
           src_mem=(0, 0, 0, 0)):
    return RECORD.pack(ip, is_branch, taken, dest_regs[0], dest_regs[1],
                       bytes(src_regs), dest_mem[0], dest_mem[1],
                       src_mem[0], src_mem[1], src_mem[2], src_mem[3])


def lcg(seed):
    state = seed
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        yield state


def stream_gups():
    out = []
    rng = lcg(0x5EED)
    stream_base = 0x10000
    table_base = 0x800000
    ip = 0x400000
    for i in range(220):
        # Three strided stream loads (T2 food)...
        for lane in range(3):
            addr = stream_base + lane * 0x4000 + i * 64
            out.append(record(ip + lane * 4, dest_regs=(2 + lane, 0),
                              src_regs=(10, 0, 0, 0),
                              src_mem=(addr, 0, 0, 0)))
        # ...one GUPS-style random read-modify-write...
        slot = next(rng) % 512
        addr = table_base + slot * 64
        out.append(record(ip + 12, dest_regs=(6, 0),
                          src_regs=(11, 0, 0, 0),
                          src_mem=(addr, 0, 0, 0)))
        out.append(record(ip + 16, src_regs=(6, 11, 0, 0),
                          dest_mem=(addr, 0)))
        # ...and a loop-closing backward branch.
        out.append(record(ip + 20, is_branch=1, taken=1))
    return b"".join(out)


def linked_walk():
    out = []
    rng = lcg(0xC0FFEE)
    nodes = list(range(256))
    # Deterministic shuffle: the walk order is irregular but repeats
    # exactly, the pattern temporal prefetchers feed on.
    for i in range(len(nodes) - 1, 0, -1):
        j = next(rng) % (i + 1)
        nodes[i], nodes[j] = nodes[j], nodes[i]
    heap = 0x2000000
    ip = 0x401000
    for _ in range(4):
        for step, node in enumerate(nodes):
            addr = heap + node * 128
            out.append(record(ip, dest_regs=(4, 0),
                              src_regs=(4, 0, 0, 0),
                              src_mem=(addr, 0, 0, 0)))
            if step % 16 == 15:
                out.append(record(ip + 4, is_branch=1, taken=1))
    return b"".join(out)


def main():
    plain = HERE / "stream_gups.champsim"
    plain.write_bytes(stream_gups())
    print(f"{plain.name}: {plain.stat().st_size} bytes")

    raw = linked_walk()
    xz_path = HERE / "linked_walk.champsim.xz"
    compressed = subprocess.run(
        ["xz", "-9", "-c"], input=raw, stdout=subprocess.PIPE,
        check=True).stdout
    xz_path.write_bytes(compressed)
    print(f"{xz_path.name}: {xz_path.stat().st_size} bytes "
          f"({len(raw)} raw)")


if __name__ == "__main__":
    main()
