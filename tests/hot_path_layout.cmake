# Layout guard for the per-access train path (tier1).
#
# The flat-table PR's contract: no node-based std:: containers and no
# string-keyed lookups on the hot headers that the per-access loop
# probes (T2/P1/C1/composite state, the SIT, and the accounting maps).
# A reintroduced std::unordered_map<Pc, ...> would silently undo the
# data-layout work, so this scripted test greps for the forbidden
# spellings and fails with the offending line.
#
# Usage: cmake -DSRC_DIR=<repo>/src -P hot_path_layout.cmake

if(NOT DEFINED SRC_DIR)
    message(FATAL_ERROR "pass -DSRC_DIR=<repo src dir>")
endif()

set(hot_headers
    common/arena.hpp
    common/hotpath.hpp
    common/ring_buffer.hpp
    common/simd.hpp
    core/t2.hpp
    core/sit.hpp
    core/p1.hpp
    core/c1.hpp
    core/composite.hpp
    metrics/accounting.hpp
    mem/memory_image.hpp
    prefetch/prefetcher.hpp
    prefetch/ampm.hpp
    prefetch/bop.hpp
    prefetch/fdp.hpp
    prefetch/ghb_pcdc.hpp
    prefetch/isb.hpp
    prefetch/markov.hpp
    prefetch/next_line.hpp
    prefetch/pchase.hpp
    prefetch/sms.hpp
    prefetch/spp.hpp
    prefetch/stride_pc.hpp
    prefetch/triangel.hpp
    prefetch/vldp.hpp
)

# Forbidden container spellings. std::map is allowed only in cold
# registries (counters.hpp resolves handles outside the loop), which
# is why these patterns scan the hot headers alone.
set(banned_patterns
    "std::unordered_map"
    "std::unordered_set<[^>]*Pc"
    "std::map<"
    "std::multimap"
)

set(failures "")
foreach(header ${hot_headers})
    set(path "${SRC_DIR}/${header}")
    if(NOT EXISTS "${path}")
        list(APPEND failures "missing hot header: ${path}")
        continue()
    endif()
    file(STRINGS "${path}" lines)
    set(lineno 0)
    foreach(line IN LISTS lines)
        math(EXPR lineno "${lineno} + 1")
        foreach(pattern ${banned_patterns})
            if(line MATCHES "${pattern}")
                list(APPEND failures
                     "${header}:${lineno}: banned '${pattern}': ${line}")
            endif()
        endforeach()
    endforeach()
endforeach()

if(failures)
    string(JOIN "\n  " msg ${failures})
    message(FATAL_ERROR
        "node-based/string-keyed containers back on the hot path:\n  ${msg}")
endif()
message(STATUS "hot-path layout clean: ${hot_headers}")
