# Trace determinism check, run as a ctest via `cmake -P`.
#
# Runs the same multi-cell traced sweep once with --jobs 1 and once
# with --jobs 4, then requires every per-cell trace file to be
# byte-identical between the two runs. This is the contract the event
# bus documents: trace bytes depend only on the cell, never on worker
# scheduling.
#
# Usage:
#   cmake -DDOLSIM=<path-to-dolsim> -DWORKDIR=<scratch-dir>
#         -P trace_determinism.cmake

foreach(required DOLSIM WORKDIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "trace_determinism: -D${required}= not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(sweep_args
    --workload libquantum.syn,mcf.syn
    --prefetcher TPC,SPP
    --instrs 20000
    --quiet)

foreach(jobs 1 4)
    execute_process(
        COMMAND "${DOLSIM}" ${sweep_args} --jobs ${jobs}
                --trace "${WORKDIR}/j${jobs}.trc"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "trace_determinism: dolsim --jobs ${jobs} failed (${rc})")
    endif()
endforeach()

set(cells
    libquantum.syn.TPC
    libquantum.syn.SPP
    mcf.syn.TPC
    mcf.syn.SPP)

foreach(cell ${cells})
    set(a "${WORKDIR}/j1.trc.${cell}")
    set(b "${WORKDIR}/j4.trc.${cell}")
    foreach(path ${a} ${b})
        if(NOT EXISTS "${path}")
            message(FATAL_ERROR
                    "trace_determinism: missing trace file ${path}")
        endif()
    endforeach()
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E compare_files "${a}" "${b}"
        RESULT_VARIABLE differs)
    if(NOT differs EQUAL 0)
        message(FATAL_ERROR
                "trace_determinism: ${cell} trace differs between "
                "--jobs 1 and --jobs 4")
    endif()
endforeach()

message(STATUS "trace_determinism: all ${cells} byte-identical")
