/**
 * @file
 * End-to-end simulator tests: baseline sanity, prefetcher speedups on
 * targeted kernels, and metric plumbing.
 */

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "workloads/pointer_kernels.hpp"
#include "workloads/stream_kernels.hpp"

namespace dol
{
namespace
{

SimConfig
testConfig(std::uint64_t instrs = 120000)
{
    SimConfig config;
    config.maxInstrs = instrs;
    return config;
}

TEST(Simulator, BaselineRunsAndReportsIpc)
{
    MemoryImage image;
    StreamKernel kernel(image, {.streams = 1,
                                .strideBytes = 64,
                                .footprintBytes = 8ull << 20,
                                .seed = 3});
    Simulator sim(testConfig(), kernel, nullptr);
    sim.run();

    EXPECT_EQ(sim.instructions(), 120000u);
    EXPECT_GT(sim.ipc(), 0.05);
    EXPECT_LT(sim.ipc(), 4.0);
    // A memory-bound stream over 8 MB must miss in L1.
    EXPECT_GT(sim.mem().stats().level[kL1].primaryMisses, 1000u);
}

TEST(Simulator, ShadowHierarchyMatchesRealWithoutPrefetcher)
{
    MemoryImage image;
    StreamKernel kernel(image, {.streams = 2,
                                .strideBytes = 64,
                                .footprintBytes = 4ull << 20,
                                .seed = 4});
    Simulator sim(testConfig(), kernel, nullptr);
    sim.run();

    const MemStats &stats = sim.mem().stats();
    // With no prefetches, the alternate reality is this reality.
    for (unsigned lv = 0; lv < kNumCacheLevels; ++lv) {
        EXPECT_EQ(stats.level[lv].shadowMisses,
                  stats.level[lv].primaryMisses)
            << "level " << lv;
        EXPECT_EQ(stats.level[lv].inducedMisses, 0u) << "level " << lv;
    }
}

TEST(Simulator, T2AcceleratesStridedStream)
{
    ExperimentRunner runner(testConfig());
    const WorkloadSpec spec{
        "stream.test", "test", [](MemoryImage &image) {
            return std::make_unique<StreamKernel>(
                image, StreamKernel::Params{.streams = 1,
                                            .strideBytes = 16,
                                            .footprintBytes = 16ull
                                                              << 20,
                                            .aluPerIter = 6,
                                            .seed = 5});
        }};

    const RunOutput out = runner.run(spec, "T2");
    EXPECT_GT(out.speedup(), 1.2) << "T2 must hide stream misses";
    EXPECT_GT(out.effCoverageL1, 0.5);
    EXPECT_GT(out.effAccuracyL1, 0.5);
    EXPECT_GT(out.scope, 0.5);
}

TEST(Simulator, P1AcceleratesArrayOfPointers)
{
    ExperimentRunner runner(testConfig());
    const WorkloadSpec spec{
        "parr.test", "test", [](MemoryImage &image) {
            return std::make_unique<PointerArrayKernel>(
                image, PointerArrayKernel::Params{.entries = 1u << 16,
                                                  .objectBytes = 256,
                                                  .fieldOffset = 24,
                                                  .aluPerIter = 28,
                                                  .seed = 6});
        }};

    const RunOutput base_t2 = runner.run(spec, "T2");
    const RunOutput with_p1 = runner.run(spec, "T2P1");
    EXPECT_GT(with_p1.speedup(), base_t2.speedup() + 0.08)
        << "P1 must add speedup on an array-of-pointers workload";
    EXPECT_GT(with_p1.effCoverageL1, 0.9);
}

TEST(Simulator, P1CoversPointerChain)
{
    // A serial chain cannot run faster than one node per memory round
    // trip — prefetching it earns coverage and accuracy, not IPC.
    ExperimentRunner runner(testConfig());
    const WorkloadSpec spec{
        "chase.test", "test", [](MemoryImage &image) {
            return std::make_unique<ListChaseKernel>(
                image, ListChaseKernel::Params{.nodes = 1u << 15,
                                               .nodeBytes = 128,
                                               .seed = 6});
        }};

    const RunOutput with_p1 = runner.run(spec, "T2P1");
    EXPECT_GT(with_p1.effCoverageL1, 0.8)
        << "the chain FSM must stay on the list";
    EXPECT_GT(with_p1.speedup(), 0.97) << "and must never hurt";
}

TEST(Simulator, TrafficIsTrackedAgainstBaseline)
{
    ExperimentRunner runner(testConfig());
    const WorkloadSpec spec{
        "stream.traffic", "test", [](MemoryImage &image) {
            return std::make_unique<StreamKernel>(
                image, StreamKernel::Params{.streams = 1,
                                            .strideBytes = 16,
                                            .footprintBytes = 16ull
                                                              << 20,
                                            .aluPerIter = 6,
                                            .seed = 7});
        }};

    const RunOutput out = runner.run(spec, "T2");
    // An accurate stream prefetcher moves the same lines, so
    // normalized traffic stays close to 1.
    EXPECT_GT(out.trafficNormalized, 0.85);
    EXPECT_LT(out.trafficNormalized, 1.3);
}

TEST(Simulator, ComponentNamesAreAssigned)
{
    MemoryImage image;
    StreamKernel kernel(image, {.seed = 8});
    auto tpc = makePrefetcher("TPC", &image);
    Simulator sim(testConfig(1000), kernel, tpc.get());

    const auto &names = sim.componentNames();
    EXPECT_EQ(names[1], "T2");
    EXPECT_EQ(names[2], "P1");
    EXPECT_EQ(names[3], "C1");
}

TEST(Simulator, RunsAreDeterministic)
{
    const WorkloadSpec &spec = findWorkload("gcc.syn");
    auto run_once = [&spec]() {
        MemoryImage image;
        auto kernel = spec.factory(image);
        auto pf = makePrefetcher("TPC", &image);
        Simulator sim(testConfig(60000), *kernel, pf.get());
        sim.run();
        return std::make_tuple(
            sim.core().stats().cycles,
            sim.mem().stats().level[kL1].primaryMisses,
            sim.mem().stats().prefetchesIssued());
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, QuickEnvShrinksBudget)
{
    setenv("DOL_QUICK", "1", 1);
    EXPECT_EQ(makeBenchConfig(400000).maxInstrs, 60000u);
    unsetenv("DOL_QUICK");
    EXPECT_EQ(makeBenchConfig(400000).maxInstrs, 400000u);
}

} // namespace
} // namespace dol
