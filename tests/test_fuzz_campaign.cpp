/**
 * @file
 * Tier-2 tests for the fuzz campaign driver: clean parallel runs,
 * byte-identical summaries across job counts, reproducer files that
 * replay, and the mutation self-tests backing the checker's
 * bug-finding guarantee — each planted bug must be caught within 200
 * cases and shrink to at most 100 records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/adaptive_check.hpp"
#include "check/campaign.hpp"
#include "check/fuzz_workload.hpp"
#include "check/multicore_check.hpp"
#include "workloads/trace_file.hpp"

namespace dol::check
{
namespace
{

std::string
scratchDir(const std::string &leaf)
{
    const auto dir =
        std::filesystem::temp_directory_path() / "dol-fuzz-test" / leaf;
    std::filesystem::remove_all(dir);
    return dir.string();
}

TEST(FuzzCampaign, CleanRunReportsZeroFailures)
{
    CampaignOptions options;
    options.cases = 40;
    options.seed = 1;
    options.jobs = 2;
    options.reproDir = scratchDir("clean");

    const CampaignReport report = runCampaign(options);
    EXPECT_TRUE(report.ok()) << report.summaryText();
    EXPECT_EQ(report.summaryText(),
              "fuzz campaign: 40 cases, seed 1, 0 failures\n");
    EXPECT_FALSE(std::filesystem::exists(options.reproDir))
        << "a clean campaign must not create the reproducer dir";
}

TEST(FuzzCampaign, SummaryIsIdenticalAcrossJobCounts)
{
    CampaignOptions options;
    options.cases = 16;
    options.seed = 3;
    options.reproDir = scratchDir("jobs");

    options.jobs = 1;
    const std::string serial = runCampaign(options).summaryText();
    options.jobs = 4;
    const std::string parallel = runCampaign(options).summaryText();
    EXPECT_EQ(serial, parallel);
}

TEST(FuzzCampaign, ReproducerFileReplaysTheFailure)
{
    CampaignOptions options;
    options.cases = 1;
    options.seed = 7; // case 0 of seed 7 catches every mutation
    options.jobs = 1;
    options.mutation = Mutation::kLruVictimOffByOne;
    options.reproDir = scratchDir("repro");

    const CampaignReport report = runCampaign(options);
    ASSERT_EQ(report.failures.size(), 1u);
    const CaseFailure &failure = report.failures.front();
    EXPECT_EQ(failure.index, 0u);
    ASSERT_FALSE(failure.reproPath.empty());
    ASSERT_TRUE(std::filesystem::exists(failure.reproPath));

    // Replaying the shrunk trace with the case's derived parameters
    // reproduces the diff, as the sidecar's replay command promises.
    std::vector<TraceRecord> records;
    ASSERT_TRUE(readTraceRecords(failure.reproPath, records));
    EXPECT_EQ(records.size(), failure.shrunkRecords);
    CheckConfig config;
    config.params = makeFuzzParams(failure.caseSeed);
    config.mutation = options.mutation;
    const DiffResult replay = checkTrace(records, config);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.check, failure.diff.check);
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Replace every occurrence of @p dir with a placeholder so summaries
 *  from campaigns using different reproducer dirs compare equal. */
std::string
normalizeDirs(std::string text, const std::string &dir)
{
    for (std::size_t pos = text.find(dir); pos != std::string::npos;
         pos = text.find(dir))
        text.replace(pos, dir.size(), "<repro>");
    return text;
}

TEST(FuzzCampaign, CleanCampaignInterruptAndResumeMatchesBaseline)
{
    const std::string work = scratchDir("resume-clean");
    std::filesystem::create_directories(work);

    CampaignOptions options;
    options.cases = 200;
    options.seed = 1; // clean: every case passes, so all journal
    options.jobs = 2;
    options.reproDir = work + "/repro";
    options.checkpointPath = work + "/campaign.ckpt";

    // Drain after ~60 completions (the test hook stands in for
    // SIGINT): the run must report interrupted, not complete.
    options.stopAfterCases = 60;
    const CampaignReport cut = runCampaign(options);
    EXPECT_TRUE(cut.interrupted);
    EXPECT_FALSE(cut.ok());
    EXPECT_GE(cut.casesRun, 60u);
    EXPECT_LT(cut.casesRun, options.cases);

    // Resume: journaled passes are skipped, the rest execute, and the
    // final report is byte-identical to an uninterrupted campaign.
    options.stopAfterCases = 0;
    options.resume = true;
    const CampaignReport resumed = runCampaign(options);
    EXPECT_TRUE(resumed.ok()) << resumed.summaryText();
    EXPECT_EQ(resumed.casesResumed, cut.casesRun);
    EXPECT_EQ(resumed.casesRun + resumed.casesResumed, options.cases);
    EXPECT_EQ(resumed.summaryText(),
              "fuzz campaign: 200 cases, seed 1, 0 failures\n");
}

TEST(FuzzCampaign, InterruptedMutationCampaignResumesToBaseline)
{
    // Uninterrupted baseline, including shrunk reproducer files.
    CampaignOptions base;
    base.cases = 6;
    base.seed = 7;
    base.jobs = 1;
    base.mutation = Mutation::kLruVictimOffByOne;
    base.maxShrinkEvaluations = 300;
    base.reproDir = scratchDir("resume-mut-base");
    const CampaignReport baseline = runCampaign(base);
    EXPECT_FALSE(baseline.interrupted);
    ASSERT_FALSE(baseline.failures.empty());

    // The same campaign drained after 3 cases, then resumed. Failures
    // are never journaled, so the resumed run re-executes them and
    // regenerates identical diffs and reproducers.
    const std::string work = scratchDir("resume-mut-cut");
    std::filesystem::create_directories(work);
    CampaignOptions options = base;
    options.reproDir = work + "/repro";
    options.checkpointPath = work + "/campaign.ckpt";
    options.stopAfterCases = 3;
    const CampaignReport cut = runCampaign(options);
    EXPECT_TRUE(cut.interrupted);
    EXPECT_LT(cut.casesRun, options.cases);

    options.stopAfterCases = 0;
    options.resume = true;
    const CampaignReport resumed = runCampaign(options);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(normalizeDirs(resumed.summaryText(), options.reproDir),
              normalizeDirs(baseline.summaryText(), base.reproDir));

    ASSERT_EQ(resumed.failures.size(), baseline.failures.size());
    for (std::size_t i = 0; i < baseline.failures.size(); ++i) {
        const CaseFailure &want = baseline.failures[i];
        const CaseFailure &got = resumed.failures[i];
        EXPECT_EQ(got.index, want.index);
        EXPECT_EQ(got.caseSeed, want.caseSeed);
        ASSERT_FALSE(got.reproPath.empty());
        EXPECT_EQ(readFileBytes(got.reproPath),
                  readFileBytes(want.reproPath))
            << "reproducer for case " << want.index
            << " differs after resume";
    }
}

/**
 * The acceptance bar for the checker itself: each planted bug is
 * found within 200 cases and its reproducer shrinks to <= 100
 * records. kLruVictimOffByOne plants an eviction off-by-one,
 * kDropRebinding drops the coordinator's rebind-on-prefetch-hit,
 * kT2ConfirmThreshold shifts T2's stride confirmation by one, and
 * kRebindWrongExtra rebinds to the wrong extra only in >=3-extra
 * composites — catching it proves the campaign exercises rebinding
 * in the enlarged configuration, not just the classic two-extra one.
 */
class MutationSelfTest : public ::testing::TestWithParam<Mutation>
{
};

TEST_P(MutationSelfTest, CaughtWithinBudgetAndShrinksSmall)
{
    const MutationProbe probe = probeMutation(7, 200, GetParam());
    ASSERT_TRUE(probe.found)
        << mutationName(GetParam())
        << " survived 200 fuzz cases undetected";
    EXPECT_LT(probe.failure.index, 200u);
    EXPECT_FALSE(probe.shrunk.empty());
    EXPECT_LE(probe.shrunk.size(), 100u)
        << "shrunk reproducer too large for "
        << mutationName(GetParam());
}

/**
 * Multicore differential campaign: heterogeneous 2- and 4-core mixes
 * double-run to byte-identical counter registries with per-core DRAM
 * attribution summing to the shared total.
 */
TEST(MulticoreFuzz, CleanCampaignReportsZeroFailures)
{
    MulticoreCampaignOptions options;
    options.cases = 40;
    options.seed = 1;
    const MulticoreCampaignReport report =
        runMulticoreCampaign(options);
    EXPECT_TRUE(report.ok()) << report.summaryText();
    EXPECT_EQ(report.summaryText(),
              "multicore fuzz: 40 cases, seed 1, 0 failures\n");
}

/**
 * Self-test for the multicore checker's teeth: a planted arbitration
 * drift (the second run silently flips fifo <-> demand-first) must
 * surface as a counter divergence within the case budget. Catching
 * it proves the double-run comparison actually covers the
 * shared-channel arbitration path.
 */
TEST(MulticoreFuzz, ArbitrationDriftMutationIsCaught)
{
    const std::uint64_t index =
        probeMulticoreMutation(7, 200, Mutation::kArbitrationDrift);
    ASSERT_NE(index, UINT64_MAX)
        << "arbdrift survived 200 multicore fuzz cases undetected";
    EXPECT_LT(index, 200u);
}

/**
 * Adaptive differential campaign: every case runs the identical trace
 * under the hardwired and adaptive coordinators (demand streams must
 * be identical), replays the logged window decisions through the
 * naive ReferenceAdaptive policy, round-trips the trace through the
 * ChampSim codec, and double-runs the adaptive configuration for
 * byte-identical counters.
 */
TEST(AdaptiveFuzz, CleanCampaignReportsZeroFailures)
{
    AdaptiveCampaignOptions options;
    options.cases = 40;
    options.seed = 1;
    const AdaptiveCampaignReport report =
        runAdaptiveCampaign(options);
    EXPECT_TRUE(report.ok()) << report.summaryText();
    EXPECT_EQ(report.summaryText(),
              "adaptive fuzz: 40 cases, seed 1, 0 failures\n");
}

/**
 * Self-test for the adaptive checker's teeth: a reference degree ramp
 * stuck at maxDegree must surface as a window-decision diff within
 * the case budget and shrink to roughly one decision window of
 * records. Catching it proves the per-window, per-slot field diff
 * would also catch a real runaway ramp in production.
 */
TEST(AdaptiveFuzz, DegreeRampStuckMutationIsCaughtAndShrinksSmall)
{
    const AdaptiveProbe probe =
        probeAdaptiveMutation(7, 200, Mutation::kDegreeRampStuck);
    ASSERT_TRUE(probe.found)
        << "degstick survived 200 adaptive fuzz cases undetected";
    EXPECT_LT(probe.caseIndex, 200u);
    EXPECT_EQ(probe.diff.check, "adaptive-policy");
    EXPECT_FALSE(probe.shrunk.empty());
    EXPECT_LE(probe.shrunk.size(), 100u)
        << "shrunk degstick reproducer too large";
}

INSTANTIATE_TEST_SUITE_P(AllMutations, MutationSelfTest,
                         ::testing::Values(
                             Mutation::kLruVictimOffByOne,
                             Mutation::kDropRebinding,
                             Mutation::kT2ConfirmThreshold,
                             Mutation::kRebindWrongExtra),
                         [](const auto &info) {
                             return std::string(
                                 mutationName(info.param));
                         });

} // namespace
} // namespace dol::check
