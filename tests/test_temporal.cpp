/**
 * @file
 * Tests for the temporal-correlation subsystem: the Triangel-style
 * Markov prefetcher (training-unit sampler, metadata-reuse score,
 * pair prediction), the pointer-chase engine (value-chain detection
 * without decoder taint), the temporal workload kernels' determinism,
 * and the PR's acceptance bar — on the temporal workloads the
 * enlarged composite's effective coverage beats TPC+SPP alone.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "mem/memory_image.hpp"
#include "mem/memory_system.hpp"
#include "prefetch/pchase.hpp"
#include "prefetch/triangel.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"
#include "workloads/temporal_kernels.hpp"

namespace dol
{
namespace
{

// --- Triangel ----------------------------------------------------

class TriangelTest : public ::testing::Test
{
  protected:
    TriangelTest() : emitter(mem)
    {
        pf.setId(1);
    }

    void
    miss(Pc pc, Addr addr)
    {
        now += 12;
        AccessInfo info;
        info.pc = pc;
        info.mPc = pc;
        info.addr = addr;
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = now;
        emitter.setContext(pf.id(), now);
        pf.train(info, emitter);
    }

    MemorySystem mem;
    PrefetchEmitter emitter;
    TriangelPrefetcher pf;
    Cycle now = 0;
};

TEST_F(TriangelTest, LearnsARepeatedScatterAndPrefetchesSuccessors)
{
    // A fixed 64-line scatter, traversed repeatedly from one PC: the
    // canonical temporal pattern. By the third traversal the history
    // table knows every pair and the score is comfortably positive.
    std::vector<Addr> seq;
    Rng rng(7);
    for (int i = 0; i < 64; ++i)
        seq.push_back(0x10000000 + lineAddr(rng.below(1u << 24)));

    for (int pass = 0; pass < 3; ++pass) {
        for (const Addr addr : seq)
            miss(0x400, addr);
    }

    EXPECT_TRUE(pf.isTrainingUnit(0x400));
    EXPECT_GT(pf.unitScore(0x400), 0);
    EXPECT_TRUE(pf.hasPair(seq[10]));
    EXPECT_GT(mem.stats().comp[1].issued, 0u)
        << "a learned sequence must produce prefetches";

    // The emitted targets are successors from the sequence, so the
    // vast majority land on lines the next iterations demand.
    EXPECT_GT(mem.stats().comp[1].issued, 32u);
}

TEST_F(TriangelTest, RandomStreamPinsTheScoreAndStaysQuiet)
{
    // Never-recurring pairs: every observation is fresh, the reuse
    // estimator drags the score to the floor, and prediction is
    // gated off even though the unit keeps training.
    Rng rng(9);
    for (int i = 0; i < 4000; ++i)
        miss(0x500, 0x40000000 + lineAddr(rng.below(1u << 26)));

    EXPECT_TRUE(pf.isTrainingUnit(0x500));
    EXPECT_LT(pf.unitScore(0x500), 0);
    EXPECT_EQ(mem.stats().comp[1].issued, 0u)
        << "random traffic must not produce temporal prefetches";
}

TEST_F(TriangelTest, BelowThresholdPcNeverTrains)
{
    miss(0x600, 0x20000000);
    EXPECT_FALSE(pf.isTrainingUnit(0x600));
    EXPECT_EQ(mem.stats().comp[1].issued, 0u);
}

// --- PChase ------------------------------------------------------

class PChaseTest : public ::testing::Test
{
  protected:
    PChaseTest() : emitter(mem), pf(&image)
    {
        pf.setId(2);
    }

    void
    load(Pc pc, Addr addr, std::uint64_t value, bool primary_miss)
    {
        now += 12;
        AccessInfo info;
        info.pc = pc;
        info.mPc = pc;
        info.addr = addr;
        info.value = value;
        info.isLoad = true;
        info.l1PrimaryMiss = primary_miss;
        info.l1Hit = !primary_miss;
        info.when = now;
        emitter.setContext(pf.id(), now);
        pf.train(info, emitter);
    }

    MemoryImage image;
    MemorySystem mem;
    PrefetchEmitter emitter;
    PChasePrefetcher pf;
    Cycle now = 0;
};

TEST_F(PChaseTest, ConfirmsAValueChainAndPrefetchesAhead)
{
    // p = p->next with the link at offset 16: each load's address is
    // the previous load's returned value plus 16. Writing the links
    // into the image lets the engine dereference for a second hop.
    constexpr std::int64_t kOffset = 16;
    std::vector<Addr> nodes;
    Rng rng(11);
    for (int i = 0; i < 32; ++i)
        nodes.push_back(0x30000000 + lineAddr(rng.below(1u << 22)));
    for (int i = 0; i < 32; ++i) {
        const Addr link = nodes[i] + kOffset;
        image.write64(link, nodes[(i + 1) % 32]);
    }

    Addr addr = nodes[0] + kOffset;
    for (int i = 1; i <= 12; ++i) {
        const std::uint64_t value = image.read64(addr);
        load(0x700, addr, value, /*primary_miss=*/true);
        addr = static_cast<Addr>(value) + kOffset;
    }

    EXPECT_GE(pf.chainConfidence(0x700), 2u);
    EXPECT_EQ(pf.chainOffset(0x700), kOffset);
    EXPECT_GT(mem.stats().comp[2].issued, 0u);
}

TEST_F(PChaseTest, UnrelatedValuesNeverConfirm)
{
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        load(0x800, 0x50000000 + lineAddr(rng.below(1u << 24)),
             rng.below(1ull << 40), true);
    }
    EXPECT_LT(pf.chainConfidence(0x800), 2u);
    EXPECT_EQ(mem.stats().comp[2].issued, 0u);
}

TEST_F(PChaseTest, ChainOnlyPrefetchesWhereDemandWouldStall)
{
    // A confirmed chain whose loads all hit L1 cleanly: nothing to
    // cover, so the engine must stay silent.
    constexpr std::int64_t kOffset = 0;
    Addr addr = 0x60000000;
    std::uint64_t value = 0x60001000;
    for (int i = 0; i < 20; ++i) {
        load(0x900, addr, value, /*primary_miss=*/false);
        addr = static_cast<Addr>(value) + kOffset;
        value += 0x1000;
    }
    EXPECT_GE(pf.chainConfidence(0x900), 2u);
    EXPECT_EQ(mem.stats().comp[2].issued, 0u);
}

// --- temporal kernels --------------------------------------------

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.pc == b.pc && a.op == b.op && a.addr == b.addr &&
           a.value == b.value && a.dst == b.dst && a.src1 == b.src1 &&
           a.target == b.target && a.taken == b.taken;
}

TEST(TemporalKernels, EveryTemporalWorkloadReplaysAfterReset)
{
    // The stratifier contract: reset() replays bit-identically.
    for (const WorkloadSpec &spec : temporalSuite()) {
        MemoryImage image;
        auto kernel = spec.factory(image);

        std::vector<Instr> first;
        Instr instr;
        for (int i = 0; i < 30000 && kernel->next(instr); ++i)
            first.push_back(instr);

        kernel->reset();
        for (std::size_t i = 0; i < first.size(); ++i) {
            ASSERT_TRUE(kernel->next(instr)) << spec.name << " @" << i;
            ASSERT_TRUE(sameInstr(first[i], instr))
                << spec.name << " diverged at " << i;
        }
    }
}

TEST(TemporalKernels, ShuffledListReplaysIdenticallyAcrossShuffles)
{
    // Reshuffling rewrites links in the memory image; reset() must
    // restore the initial orders (and the shuffle rng) so a replay is
    // bit-identical even across several shuffle boundaries.
    MemoryImage image;
    ShuffledListKernel kernel(
        image, {.chains = 1, .nodes = 32, .traversalsPerShuffle = 2,
                .swapsPerShuffle = 4, .seed = 17});

    std::vector<Instr> first;
    Instr instr;
    for (int i = 0; i < 4000 && kernel.next(instr); ++i)
        first.push_back(instr);
    ASSERT_GT(kernel.traversalCount(), 6u)
        << "must cross multiple shuffle boundaries";

    kernel.reset();
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(kernel.next(instr)) << i;
        ASSERT_TRUE(sameInstr(first[i], instr)) << "diverged at " << i;
    }
}

TEST(TemporalKernels, ShuffledListLinkLoadsFormValueChains)
{
    MemoryImage image;
    ShuffledListKernel kernel(
        image, {.chains = 2, .nodes = 64, .traversalsPerShuffle = 100,
                .swapsPerShuffle = 4, .aluPerIter = 0,
                .payloadLoads = 0, .seed = 3});

    // Per chain: consecutive link loads satisfy addr == prev value
    // (self-referencing signature at offset 0).
    std::vector<std::uint64_t> last_value(2, 0);
    std::vector<bool> seen(2, false);
    Instr instr;
    unsigned checked = 0;
    for (int i = 0; i < 2000 && kernel.next(instr); ++i) {
        if (!instr.isMem())
            continue;
        const unsigned chain = instr.dst - 10;
        ASSERT_LT(chain, 2u);
        if (seen[chain]) {
            ASSERT_EQ(instr.addr, last_value[chain])
                << "chain " << chain << " broke at instr " << i;
            ++checked;
        }
        last_value[chain] = instr.value;
        seen[chain] = true;
    }
    EXPECT_GT(checked, 500u);
}

TEST(TemporalKernels, StreamsUseDistinctPcsAndArenas)
{
    MemoryImage image;
    TemporalStreamKernel kernel(
        image, {.streams = 3, .elements = 128, .aluPerIter = 0,
                .seed = 5});
    std::set<Pc> pcs;
    std::set<Addr> arenas;
    Instr instr;
    for (int i = 0; i < 4000 && kernel.next(instr); ++i) {
        if (!instr.isMem())
            continue;
        pcs.insert(instr.pc);
        arenas.insert(instr.addr >> 26);
    }
    EXPECT_EQ(pcs.size(), 6u) << "2 load PCs per stream";
    EXPECT_EQ(arenas.size(), 3u) << "1 arena per stream";
}

// --- acceptance: coverage win on the temporal suite --------------

TEST(TemporalAcceptance, TriangelImprovesCoverageOverTpcSpp)
{
    SimConfig config;
    config.maxInstrs = 150000;
    ExperimentRunner runner(config);
    const WorkloadSpec &spec = findWorkload("tempstream.syn");

    const RunOutput base = runner.run(spec, "TPC+SPP", {});
    const RunOutput enlarged =
        runner.run(spec, "TPC+SPP+Triangel+PChase", {});

    // The enlarged composite covers the Triangel-bound stream almost
    // fully; TPC+SPP has no handle on a repeated scatter at all.
    EXPECT_GT(enlarged.effCoverageL1, base.effCoverageL1 + 0.10)
        << "enlarged " << enlarged.effCoverageL1 << " vs TPC+SPP "
        << base.effCoverageL1;
    EXPECT_GT(enlarged.effAccuracyL1, 0.5);
}

} // namespace
} // namespace dol
