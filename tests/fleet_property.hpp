/**
 * @file
 * Shared property-test harness for the fleet subsystem: drive the
 * real FleetCoordinator + LeaseLedger + merger over a synthetic
 * N-cell grid with a seeded random partition (1–16 leases) and a
 * seeded random kill schedule (forked journal-writer children that
 * _Exit mid-range), and assert the merged document's deterministic
 * prefix always byte-equals a ResultStore reference built from the
 * same rows.
 *
 * The cells are fabricated (a pure function of the cell index), not
 * simulated, so hundreds of cells per round cost milliseconds — the
 * property under test is the coordinator/ledger/merge machinery, not
 * the simulator. test_fleet.cpp runs a small tier-1 smoke of this
 * harness; test_fleet_property.cpp runs the 200-cell tier-2 battery.
 */

#ifndef DOL_TESTS_FLEET_PROPERTY_HPP
#define DOL_TESTS_FLEET_PROPERTY_HPP

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fleet/coordinator.hpp"
#include "fleet/ledger.hpp"
#include "runner/checkpoint.hpp"
#include "runner/result_store.hpp"

namespace fleet_property
{

using namespace dol;

inline std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::create_directories(dir, ec);
    return dir;
}

inline bool
readFileTo(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

/** Everything before the wall-clock-dependent "timing" key. */
inline std::string
deterministicPrefix(const std::string &document)
{
    const std::size_t pos = document.find("\"timing\"");
    return pos == std::string::npos ? std::string()
                                    : document.substr(0, pos);
}

/** Synthetic metric row: a pure function of the cell index, so a
 *  re-granted lease re-fabricates bit-identical data. */
inline runner::MetricsRow
rowFor(std::uint64_t cell)
{
    runner::MetricsRow row;
    row.workload = "syn" + std::to_string(cell % 7) + ".syn";
    row.prefetcher = (cell % 2) ? "SPP" : "TPC";
    row.variant = ":v" + std::to_string(cell);
    row.seed = 0x9e3779b97f4a7c15ull * (cell + 1);
    row.baselineIpc = 0.5 + 0.001 * static_cast<double>(cell);
    row.ipc = 1.0 + 0.002 * static_cast<double>(cell);
    row.speedup = row.ipc / row.baselineIpc;
    row.baselineMpkiL1 = 10.0 + static_cast<double>(cell);
    row.prefetchesIssued = 1000 + cell;
    row.scope = 0.5;
    row.effAccuracyL1 = 0.25;
    row.effCoverageL1 = 0.125;
    row.effAccuracyL2 = 0.0625;
    row.effCoverageL2 = 0.03125;
    row.trafficNormalized =
        1.0 + 0.001 * static_cast<double>(cell);
    row.instructions = 4000;
    row.counters.set("t2", "streams", cell);
    return row;
}

/** Deterministically quarantined cells (every lease generation agrees,
 *  so the reference is independent of the kill schedule). */
inline bool
cellFails(std::uint64_t cell)
{
    return cell % 17 == 5;
}

inline runner::FailedCell
failureFor(std::uint64_t cell)
{
    runner::FailedCell out;
    out.label = rowFor(cell).prefetcher + "/" + rowFor(cell).workload;
    out.variant = ":v" + std::to_string(cell);
    out.seed = rowFor(cell).seed;
    out.attempts = 1;
    out.kind = "error";
    out.error = "synthetic failure in cell " + std::to_string(cell);
    return out;
}

inline runner::JournalJobDone
jobFor(std::uint64_t cell)
{
    runner::JournalJobDone job;
    job.jobIndex = cell;
    const runner::MetricsRow row = rowFor(cell);
    job.label = row.prefetcher + "/" + row.workload;
    job.variant = row.variant;
    job.seed = row.seed;
    job.wallMs = 1.0; // deterministic: not under test
    job.rows.push_back(row);
    return job;
}

/** Worker-child body: journal the leased range in order, dying after
 *  @p kill_after cells when non-negative (std::_Exit — no unwinding,
 *  SIGKILL semantics). */
inline void
writeWorkerJournal(const std::string &lease_dir,
                   const runner::JournalPlan &plan,
                   const fleet::LeaseGrant &grant,
                   std::int64_t kill_after)
{
    runner::CheckpointJournal journal;
    if (!journal.create(
            fleet::leaseJournalPath(lease_dir, grant.leaseId), plan))
        std::_Exit(1);
    std::int64_t written = 0;
    for (std::uint64_t cell = grant.begin; cell < grant.end; ++cell) {
        if (kill_after >= 0 && written == kill_after)
            std::_Exit(137);
        if (cellFails(cell)) {
            runner::JournalCellFailed failed;
            failed.jobIndex = cell;
            failed.cell = failureFor(cell);
            journal.appendCellFailed(failed);
        } else {
            journal.appendJobDone(jobFor(cell));
        }
        ++written;
    }
}

/**
 * One property round: random lease count and worker count, random
 * kill schedule over generation-0 leases, real coordinator, then the
 * byte-identity and ledger-lifecycle assertions.
 */
inline void
runFleetPropertyRound(std::uint64_t cells, std::mt19937_64 &rng,
                      const std::string &dir,
                      unsigned force_leases = 0)
{
    runner::JournalPlan plan;
    plan.itemCount = cells;
    plan.gridHash = 0xF1EE7C0DEull ^ cells;
    plan.maxInstrs = 4000;

    // Reference document: the rows a single uninterrupted process
    // would aggregate, serialized by ResultStore itself.
    runner::ResultStore store;
    runner::SweepMeta meta;
    meta.generator = "synthetic-fleet";
    meta.maxInstrs = plan.maxInstrs;
    for (std::uint64_t cell = 0; cell < cells; ++cell) {
        if (cellFails(cell)) {
            meta.failedCells.push_back(failureFor(cell));
        } else {
            store.append(rowFor(cell));
            meta.wallMs.push_back(1.0);
        }
    }
    const std::string reference =
        deterministicPrefix(store.toJson(meta));
    ASSERT_FALSE(reference.empty());

    fleet::FleetOptions options;
    options.leaseDir = dir;
    options.workers = 1 + static_cast<unsigned>(rng() % 4);
    options.leases = force_leases
                         ? force_leases
                         : 1 + static_cast<unsigned>(rng() % 16);
    options.leaseTtlMs = 30000;
    options.outputPath = dir + "/merged.json";

    const auto spawn = [&](const fleet::LeaseGrant &grant) -> pid_t {
        // Kill schedule (parent-side, so the seeded stream is shared
        // and replayable): half the leases of the first two
        // generations die mid-range, so a re-granted lease can itself
        // be killed — well inside the maxGenerations budget.
        std::int64_t kill_after = -1;
        if (grant.generation < 2 && rng() % 2 == 0)
            kill_after = static_cast<std::int64_t>(
                rng() % (grant.end - grant.begin));
        std::fflush(nullptr);
        const pid_t pid = fork();
        if (pid == 0) {
            writeWorkerJournal(dir, plan, grant, kill_after);
            std::_Exit(0);
        }
        return pid;
    };

    fleet::FleetCoordinator coordinator(plan, options, spawn);
    runner::SweepMeta merge_meta;
    merge_meta.generator = meta.generator;
    merge_meta.maxInstrs = meta.maxInstrs;
    const fleet::FleetReport report = coordinator.run(merge_meta);
    ASSERT_TRUE(report.ok) << report.error;
    ASSERT_TRUE(report.merge.ok) << report.merge.error;

    std::string merged;
    ASSERT_TRUE(readFileTo(options.outputPath, merged));
    EXPECT_EQ(deterministicPrefix(merged), reference)
        << "merged document diverged from the single-process "
           "reference (workers="
        << options.workers << " leases=" << options.leases << ")";

    const auto ledger =
        fleet::LeaseLedger::load(fleet::ledgerPath(dir));
    ASSERT_TRUE(ledger.valid) << ledger.error;
    EXPECT_TRUE(ledger.consistent) << ledger.inconsistency;
    std::size_t successors = 0;
    for (const fleet::LeaseGrant &grant : ledger.grants) {
        if (grant.parentLease != fleet::kNoParentLease)
            ++successors;
    }
    EXPECT_EQ(successors, ledger.expired.size())
        << "every expired lease must be re-granted exactly once";
    EXPECT_EQ(ledger.completed.size() + ledger.expired.size(),
              ledger.grants.size())
        << "every lease must settle as completed or expired";
}

inline void
runFleetPropertyRounds(std::uint64_t cells, unsigned rounds,
                       std::uint64_t seed, const std::string &tag)
{
    std::mt19937_64 rng(seed);
    for (unsigned round = 0; round < rounds; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const std::string dir =
            freshDir(tag + "_r" + std::to_string(round));
        runFleetPropertyRound(cells, rng, dir);
        if (testing::Test::HasFatalFailure())
            return;
    }
}

} // namespace fleet_property

#endif // DOL_TESTS_FLEET_PROPERTY_HPP
