/**
 * @file
 * Differential tests for the vector tag scans (common/simd.hpp): every
 * implementation level the host supports must return bit-identical
 * results to the scalar reference on randomized inputs, and a Cache
 * driven through a randomized fill/evict/find sequence must behave
 * identically under every level. CI additionally re-runs this binary
 * (and the cache suite) with DOL_SIMD=scalar so the fallback path
 * stays exercised on hosts where the vector units would otherwise
 * always win the dispatch.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace dol
{
namespace
{

/** Levels to test: everything up to what the dispatcher resolved
 *  (which is already clamped to host support and DOL_SIMD). */
std::vector<int>
testableLevels()
{
    std::vector<int> levels;
    for (int level = simd::kScalar; level <= simd::level(); ++level)
        levels.push_back(level);
    return levels;
}

/** RAII restore: tests override the level and must put it back. */
struct LevelGuard
{
    int saved = simd::level();
    ~LevelGuard() { simd::overrideLevel(saved); }
};

TEST(Simd, FindTagMatchesScalarOnRandomInputs)
{
    LevelGuard guard;
    Rng rng(0x51D0001);
    // A small value pool forces frequent matches, duplicates, and
    // kNoAddr (the invalid marker find() searches for free ways).
    const std::uint64_t pool[] = {0,          0x40,       0x1000,
                                  0xdeadbe40, 0xffffffff, kNoAddr};
    for (int trial = 0; trial < 5000; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(17));
        std::vector<std::uint64_t> tags(n);
        for (unsigned i = 0; i < n; ++i)
            tags[i] = pool[rng.below(6)];
        const std::uint64_t needle = pool[rng.below(6)];

        const int expected = simd::findTagScalar(tags.data(), n, needle);
        for (int level : testableLevels()) {
            simd::overrideLevel(level);
            EXPECT_EQ(simd::findTag(tags.data(), n, needle), expected)
                << simd::levelName(level) << " n=" << n
                << " needle=" << needle;
        }
        simd::overrideLevel(guard.saved);
    }
}

TEST(Simd, FindTagFirstMatchAndBoundaries)
{
    LevelGuard guard;
    for (unsigned n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u}) {
        for (unsigned pos = 0; pos < n; ++pos) {
            std::vector<std::uint64_t> tags(n, 0x1111);
            tags[pos] = 0x2222;
            if (pos + 3 < n)
                tags[pos + 3] = 0x2222; // duplicate: first must win
            for (int level : testableLevels()) {
                simd::overrideLevel(level);
                EXPECT_EQ(simd::findTag(tags.data(), n, 0x2222),
                          static_cast<int>(pos))
                    << simd::levelName(level) << " n=" << n
                    << " pos=" << pos;
                EXPECT_EQ(simd::findTag(tags.data(), n, 0x3333), -1)
                    << simd::levelName(level) << " n=" << n;
            }
            simd::overrideLevel(guard.saved);
        }
    }
}

TEST(Simd, VictimWayMatchesScalarOnRandomInputs)
{
    LevelGuard guard;
    Rng rng(0x51D0002);
    for (int trial = 0; trial < 5000; ++trial) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(16));
        std::vector<std::uint64_t> tags(n);
        std::vector<std::uint64_t> stamps(n);
        for (unsigned i = 0; i < n; ++i) {
            // ~1 in 4 ways free; stamps from a tiny range so ties
            // (earliest-index tie-break) actually occur.
            tags[i] = rng.below(4) == 0 ? kNoAddr : 0x40 * rng.below(64);
            stamps[i] = rng.below(5);
        }
        const unsigned expected =
            simd::victimWayScalar(tags.data(), stamps.data(), n, kNoAddr);
        for (int level : testableLevels()) {
            simd::overrideLevel(level);
            EXPECT_EQ(simd::victimWay(tags.data(), stamps.data(), n,
                                      kNoAddr),
                      expected)
                << simd::levelName(level) << " n=" << n;
        }
        simd::overrideLevel(guard.saved);
    }
}

/**
 * Drive a whole Cache through a randomized fill/evict/find/invalidate
 * sequence once per level and compare every observable: hit/miss per
 * find, victim line addresses, and the set of resident lines at the
 * end. The sequence regenerates identically from the seed.
 */
std::vector<std::uint64_t>
cacheObservations(int level, std::uint64_t seed)
{
    simd::overrideLevel(level);
    Cache::Params params;
    params.name = "simd-diff";
    params.sizeBytes = 8192; // 32 sets (assoc 4): plenty of conflicts
    params.assoc = 4;
    params.mshrs = 4;
    Cache cache(params);

    std::vector<std::uint64_t> log;
    Rng rng(seed);
    for (int op = 0; op < 20000; ++op) {
        // 512 distinct lines over 32 sets of 4 ways: heavy conflicts.
        const Addr addr = 0x40 * rng.below(512);
        switch (rng.below(4)) {
        case 0: { // insert
            Cache::Line *line = nullptr;
            auto victim = cache.insert(addr, &line);
            log.push_back(victim ? victim->lineAddr : kNoAddr);
            break;
        }
        case 1: { // find (+ touch on hit, perturbing LRU)
            Cache::Line *line = cache.find(addr);
            log.push_back(line ? line->tag : kNoAddr);
            if (line)
                cache.touch(*line);
            break;
        }
        case 2: // invalidate
            log.push_back(cache.invalidate(addr) ? 1 : 0);
            break;
        default: // re-find without touching
            log.push_back(cache.find(addr) != nullptr ? 1 : 0);
            break;
        }
    }
    return log;
}

TEST(Simd, CacheBehavesIdenticallyAtEveryLevel)
{
    LevelGuard guard;
    const std::vector<std::uint64_t> reference =
        cacheObservations(simd::kScalar, 0x51D0003);
    for (int level : testableLevels()) {
        EXPECT_EQ(cacheObservations(level, 0x51D0003), reference)
            << simd::levelName(level);
    }
}

TEST(Simd, LevelRespectsHostClampAndNames)
{
    // Whatever was resolved must be one of the known levels, and the
    // names round-trip (the bench and tests print them).
    const int level = simd::level();
    EXPECT_GE(level, simd::kScalar);
    EXPECT_LE(level, simd::kAvx2);
    EXPECT_STREQ(simd::levelName(simd::kScalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::kSse2), "sse2");
    EXPECT_STREQ(simd::levelName(simd::kAvx2), "avx2");
}

} // namespace
} // namespace dol
