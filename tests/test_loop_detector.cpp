/**
 * @file
 * Unit tests for T2's loop hardware: loop-branch identification, the
 * NLPCT filter, inner-loop preference, and iteration timing.
 */

#include <gtest/gtest.h>

#include "core/loop_detector.hpp"

namespace dol
{
namespace
{

Instr
backBranch(Pc pc, Pc target)
{
    return makeBranch(pc, target, true);
}

TEST(LoopDetector, DetectsBackToBackLoopBranch)
{
    LoopDetector detector;
    Cycle t = 0;
    EXPECT_FALSE(detector.observe(backBranch(0x100, 0x80), t += 10));
    EXPECT_FALSE(detector.inLoop());
    // Second instance back-to-back: loop confirmed.
    EXPECT_TRUE(detector.observe(backBranch(0x100, 0x80), t += 10));
    EXPECT_TRUE(detector.inLoop());
    EXPECT_EQ(detector.loopBranchPc(), 0x100u);
}

TEST(LoopDetector, MeasuresIterationTime)
{
    LoopDetector detector;
    Cycle t = 0;
    for (int i = 0; i < 50; ++i)
        detector.observe(backBranch(0x100, 0x80), t += 20);
    EXPECT_TRUE(detector.inLoop());
    EXPECT_NEAR(detector.iterationTime(), 20.0, 1.0);
    EXPECT_EQ(detector.iterationsObserved(), 49u);
}

TEST(LoopDetector, NonLoopBranchGoesToNlpct)
{
    LoopDetector detector;
    Cycle t = 0;
    // Pattern: X A X A X A — X is a non-loop backward branch inside
    // A's loop body.
    detector.observe(backBranch(0x200, 0x180), t += 5); // X candidate
    detector.observe(backBranch(0x300, 0x280), t += 5); // A: X -> NLPCT
    for (int i = 0; i < 4; ++i) {
        detector.observe(backBranch(0x200, 0x180), t += 5); // skipped
        detector.observe(backBranch(0x300, 0x280), t += 5);
    }
    EXPECT_TRUE(detector.inLoop());
    EXPECT_EQ(detector.loopBranchPc(), 0x300u);
}

TEST(LoopDetector, NestedLoopsResolveToInner)
{
    LoopDetector detector;
    Cycle t = 0;
    // Inner loop branch I repeats; outer branch O appears once per
    // inner-loop run. The detector must stay locked on I.
    for (int outer = 0; outer < 5; ++outer) {
        for (int inner = 0; inner < 8; ++inner)
            detector.observe(backBranch(0x100, 0x80), t += 10);
        detector.observe(backBranch(0x400, 0x40), t += 10);
    }
    EXPECT_TRUE(detector.inLoop());
    EXPECT_EQ(detector.loopBranchPc(), 0x100u);
}

TEST(LoopDetector, NewLoopTakesOver)
{
    LoopDetector detector;
    Cycle t = 0;
    for (int i = 0; i < 10; ++i)
        detector.observe(backBranch(0x100, 0x80), t += 10);
    EXPECT_EQ(detector.loopBranchPc(), 0x100u);
    // Loop A ends; loop B starts. B's branch repeats back-to-back and
    // must take over the loop register despite interrupting A.
    bool boundary = false;
    for (int i = 0; i < 4; ++i)
        boundary = detector.observe(backBranch(0x900, 0x880), t += 15);
    EXPECT_TRUE(boundary);
    EXPECT_EQ(detector.loopBranchPc(), 0x900u);
    EXPECT_NEAR(detector.iterationTime(), 15.0, 2.0);
}

TEST(LoopDetector, IgnoresForwardAndNotTakenBranches)
{
    LoopDetector detector;
    EXPECT_FALSE(detector.observe(makeBranch(0x100, 0x200, true), 10));
    EXPECT_FALSE(detector.observe(makeBranch(0x100, 0x80, false), 20));
    EXPECT_FALSE(detector.observe(makeAlu(0x104), 30));
    EXPECT_FALSE(detector.inLoop());
}

TEST(LoopDetector, StorageBudgetMatchesTableII)
{
    LoopDetector detector(16);
    // 1 LR + 16-entry NLPCT, a few dozen bytes at most.
    EXPECT_LE(detector.storageBits(), 600u);
    EXPECT_GT(detector.storageBits(), 0u);
}

} // namespace
} // namespace dol
