/**
 * @file
 * Adaptive-coordinator tests: the degree ramp's slow-start schedule
 * under synthetic feedback feeds, the demotion/readmission boundary
 * (K-1 bad windows must NOT demote), the observer-side-only contract
 * (adaptive and hardwired runs observe byte-identical demand streams
 * on every composite golden cell), the emission-budget throttle, and
 * double-run byte determinism of the `adapt.` counter scope.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/composite.hpp"
#include "core/registry.hpp"
#include "mem/memory_image.hpp"
#include "prefetch/next_line.hpp"
#include "runner/cli.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;

AdaptiveParams
testParams()
{
    AdaptiveParams params;
    params.windowAccesses = 16;
    params.minWindowIssued = 4;
    params.maxDegree = 16;
    return params;
}

/** Feed one slot's (issued, used) tallies and close exactly one
 *  window. */
void
closeWindow(AdaptiveCoordinator &coord, const AdaptiveParams &params,
            std::size_t slot, std::uint64_t issued, std::uint64_t used)
{
    coord.recordIssued(slot, issued);
    for (std::uint64_t i = 0; i < used; ++i)
        coord.recordUsed(slot);
    for (std::uint64_t i = 0; i < params.windowAccesses; ++i)
        coord.onAccess(i);
}

TEST(AdaptiveRamp, DoublesMonotonicallyUnderSustainedAccuracy)
{
    const AdaptiveParams params = testParams();
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t slot = AdaptiveCoordinator::kFirstExtraSlot;
    ASSERT_EQ(coord.degree(slot), params.startDegree);

    std::uint32_t previous = coord.degree(slot);
    for (int window = 0; window < 10; ++window) {
        closeWindow(coord, params, slot, 8, 8); // accuracy 1000
        const std::uint32_t degree = coord.degree(slot);
        EXPECT_GE(degree, previous) << "ramp regressed in window "
                                    << window;
        if (previous < params.maxDegree) {
            EXPECT_EQ(degree, previous * 2)
                << "slow-start must double in window " << window;
        }
        previous = degree;
    }
    EXPECT_EQ(previous, params.maxDegree);

    // Another perfect window must hold (never exceed) the ceiling.
    closeWindow(coord, params, slot, 8, 8);
    EXPECT_EQ(coord.degree(slot), params.maxDegree);
}

TEST(AdaptiveRamp, HalvesOnPlantedInaccuracy)
{
    const AdaptiveParams params = testParams();
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t slot = AdaptiveCoordinator::kFirstExtraSlot;

    for (int window = 0; window < 4; ++window)
        closeWindow(coord, params, slot, 8, 8);
    ASSERT_EQ(coord.degree(slot), params.maxDegree);

    // Issue plenty, use nothing: the accuracy EWMA collapses and the
    // degree halves each window until it floors at 1.
    std::uint32_t previous = coord.degree(slot);
    int halvings_until_floor = 0;
    while (coord.degree(slot) > 1 && halvings_until_floor < 32) {
        closeWindow(coord, params, slot, 8, 0);
        EXPECT_LE(coord.degree(slot), previous);
        previous = coord.degree(slot);
        ++halvings_until_floor;
    }
    EXPECT_EQ(coord.degree(slot), 1u);
    // ...and stays there (never reaches zero).
    closeWindow(coord, params, slot, 8, 0);
    EXPECT_EQ(coord.degree(slot), 1u);
}

TEST(AdaptiveRamp, PressureHalvingTrumpsAccuracy)
{
    const AdaptiveParams params = testParams();
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t slot = AdaptiveCoordinator::kFirstExtraSlot;

    for (int window = 0; window < 4; ++window)
        closeWindow(coord, params, slot, 8, 8);
    ASSERT_EQ(coord.degree(slot), params.maxDegree);

    // A monotonically-rising deferral counter signals congestion in
    // every subsequent window; accuracy stays perfect, yet the degree
    // must halve.
    std::uint64_t deferrals = 0;
    coord.setPressureProbe([&deferrals] { return deferrals; });
    closeWindow(coord, params, slot, 8, 8); // primes the probe
    const std::uint32_t primed = coord.degree(slot);
    deferrals += 5;
    closeWindow(coord, params, slot, 8, 8);
    EXPECT_EQ(coord.degree(slot), primed / 2);
}

TEST(AdaptiveRebind, KMinusOneBadWindowsDoNotDemote)
{
    AdaptiveParams params = testParams();
    params.demoteWindows = 4;
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t t2 = AdaptiveCoordinator::kSlotT2;

    for (unsigned window = 0; window + 1 < params.demoteWindows;
         ++window) {
        closeWindow(coord, params, t2, 8, 0); // accuracy 0 < floor
        EXPECT_FALSE(coord.demoted(t2))
            << "demoted after only " << (window + 1) << " windows";
    }
    EXPECT_EQ(coord.slotState(t2).belowStreak, params.demoteWindows - 1);

    // Window K crosses the threshold.
    closeWindow(coord, params, t2, 8, 0);
    EXPECT_TRUE(coord.demoted(t2));
    EXPECT_EQ(coord.budgetFor(t2), 0u);
}

TEST(AdaptiveRebind, GoodWindowResetsTheStreak)
{
    AdaptiveParams params = testParams();
    params.demoteWindows = 3;
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t t2 = AdaptiveCoordinator::kSlotT2;

    closeWindow(coord, params, t2, 8, 0);
    closeWindow(coord, params, t2, 8, 0);
    ASSERT_EQ(coord.slotState(t2).belowStreak, 2u);
    // One accurate window wipes the streak: demotion needs K
    // *consecutive* bad windows.
    closeWindow(coord, params, t2, 8, 8);
    EXPECT_EQ(coord.slotState(t2).belowStreak, 0u);
    closeWindow(coord, params, t2, 8, 0);
    closeWindow(coord, params, t2, 8, 0);
    EXPECT_FALSE(coord.demoted(t2));
}

TEST(AdaptiveRebind, ProbationEndsInReadmissionWithCleanSlate)
{
    AdaptiveParams params = testParams();
    params.demoteWindows = 2;
    params.probationWindows = 3;
    AdaptiveCoordinator coord(params);
    coord.addExtra();
    const std::size_t t2 = AdaptiveCoordinator::kSlotT2;

    closeWindow(coord, params, t2, 8, 0);
    closeWindow(coord, params, t2, 8, 0);
    ASSERT_TRUE(coord.demoted(t2));

    for (unsigned window = 0; window + 1 < params.probationWindows;
         ++window) {
        closeWindow(coord, params, t2, 0, 0);
        EXPECT_TRUE(coord.demoted(t2));
    }
    closeWindow(coord, params, t2, 0, 0);
    EXPECT_FALSE(coord.demoted(t2));
    EXPECT_EQ(coord.budgetFor(t2), AdaptiveCoordinator::kUnlimited);
    // Re-admission forgets the pre-demotion accuracy history.
    EXPECT_FALSE(coord.slotState(t2).ewmaValid);
    EXPECT_EQ(coord.slotState(t2).belowStreak, 0u);
}

TEST(AdaptiveEmitter, ZeroBudgetThrottlesInsteadOfEmitting)
{
    MemoryImage image;
    CompositePrefetcher::Config cfg;
    cfg.adaptive = true;
    cfg.adapt = testParams();
    CompositePrefetcher tpc(&image, cfg);
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(4));

    SimConfig config;
    config.maxInstrs = 4000;
    // is.syn (integer-sort random keys) leaves a healthy unclaimed
    // stream for the extra; a pure stream workload would be fully
    // claimed by T2 and never exercise the budget.
    const WorkloadSpec &spec = findWorkload("is.syn");
    MemoryImage kernel_image;
    auto kernel = spec.factory(kernel_image);
    Simulator sim(config, *kernel, &tpc);
    sim.run();

    // Slow start begins at degree 1 while the extra's NextLine degree
    // is 4: the budget must have blocked emissions, and every block
    // is visible both on the emitter and in the adapt counters.
    CounterRegistry registry;
    sim.exportCounters(registry);
    const std::string text = registry.toText();
    EXPECT_NE(text.find("adapt.windows"), std::string::npos);
    EXPECT_GT(sim.emitter().throttledCount(), 0u);
}

/** The five composite golden cells (the SPP cell has no coordinator,
 *  so adaptive mode is a documented no-op there). */
struct DemandCell
{
    const char *workload;
    const char *prefetcher;
};

constexpr DemandCell kDemandCells[] = {
    {"libquantum.syn", "TPC"},
    {"mcf.syn", "TPC"},
    {"omnetpp.syn", "TPC"},
    {"bfs.syn", "TPC"},
    {"tempstream.syn", "TPC+SPP+Triangel+PChase"},
};

struct DemandSample
{
    Pc pc;
    Pc mPc;
    Addr addr;
    bool isLoad;
    std::uint64_t value;

    bool
    operator==(const DemandSample &other) const
    {
        return pc == other.pc && mPc == other.mPc &&
               addr == other.addr && isLoad == other.isLoad &&
               value == other.value;
    }
};

std::vector<DemandSample>
demandStream(const DemandCell &cell, bool adaptive)
{
    SimConfig config;
    config.maxInstrs = 8000;
    const WorkloadSpec &spec = findWorkload(cell.workload);
    MemoryImage image;
    auto kernel = spec.factory(image);
    auto prefetcher = makePrefetcher(cell.prefetcher, &image, adaptive);
    Simulator sim(config, *kernel, prefetcher.get());
    if (adaptive) {
        if (auto *composite =
                dynamic_cast<CompositePrefetcher *>(prefetcher.get())) {
            MemorySystem &mem = sim.mem();
            composite->setPressureProbe([&mem] {
                return mem.shared().dram().stats().windowDeferrals;
            });
        }
    }
    std::vector<DemandSample> stream;
    sim.setAccessObserver([&](const AccessInfo &access) {
        stream.push_back({access.pc, access.mPc, access.addr,
                          access.isLoad, access.value});
    });
    sim.run();
    return stream;
}

TEST(AdaptiveDemandStream, IdenticalToHardwiredOnAllCompositeCells)
{
    for (const DemandCell &cell : kDemandCells) {
        SCOPED_TRACE(std::string(cell.workload) + "/" +
                     cell.prefetcher);
        const std::vector<DemandSample> hardwired =
            demandStream(cell, false);
        const std::vector<DemandSample> adaptive =
            demandStream(cell, true);
        ASSERT_EQ(hardwired.size(), adaptive.size());
        ASSERT_FALSE(hardwired.empty());
        for (std::size_t i = 0; i < hardwired.size(); ++i) {
            ASSERT_TRUE(hardwired[i] == adaptive[i])
                << "demand access " << i << " diverged";
        }
    }
}

std::string
adaptiveCountersText(const DemandCell &cell)
{
    SimConfig config;
    config.maxInstrs = 8000;
    ExperimentRunner runner(config);
    RunOptions options;
    options.collectCounters = true;
    options.adaptiveCoordinator = true;
    const RunOutput out =
        runner.run(findWorkload(cell.workload), cell.prefetcher,
                   options);
    return out.counters.toText();
}

TEST(AdaptiveDeterminism, DoubleRunAdaptCountersAreByteIdentical)
{
    // TPC+SPP so the counter text carries an extra slot (deg_extra0);
    // plain TPC has claimants only.
    const DemandCell cell{"libquantum.syn", "TPC+SPP"};
    const std::string first = adaptiveCountersText(cell);
    const std::string second = adaptiveCountersText(cell);
    EXPECT_NE(first.find("adapt.windows"), std::string::npos);
    EXPECT_NE(first.find("adapt.deg_extra0"), std::string::npos);
    EXPECT_EQ(first, second);
}

TEST(AdaptiveCli, CoordinatorModeParsesStrictly)
{
    bool adaptive = false;
    EXPECT_TRUE(runner::parseCoordinatorMode("hardwired", adaptive));
    EXPECT_FALSE(adaptive);
    EXPECT_TRUE(runner::parseCoordinatorMode("adaptive", adaptive));
    EXPECT_TRUE(adaptive);

    bool untouched = true;
    EXPECT_FALSE(runner::parseCoordinatorMode("", untouched));
    EXPECT_FALSE(runner::parseCoordinatorMode("Adaptive", untouched));
    EXPECT_FALSE(runner::parseCoordinatorMode("auto", untouched));
    EXPECT_TRUE(untouched);
}

} // namespace
