/**
 * @file
 * Trace subsystem tests: event encode/decode round-trips, the
 * writer/reader pair on real files, deterministic fuzz over truncated
 * and garbage inputs (clean errors, never crashes), the counter
 * registry, and the TraceContext tally/sink semantics.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/context.hpp"
#include "trace/counters.hpp"
#include "trace/trace_io.hpp"

namespace
{

using namespace dol;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + "dol_trace_" + name;
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** Deterministic xorshift64 — fuzz inputs must be reproducible. */
struct Rng
{
    std::uint64_t state;
    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }
};

TraceEvent
makeEvent(std::uint64_t i)
{
    TraceEvent event{};
    event.type = static_cast<TraceEventType>(
        i % static_cast<std::uint64_t>(kNumTraceEventTypes));
    event.cycle = i * 977;
    event.addr = 0x1000000000ull + i * 64;
    event.aux = ~i;
    event.comp = static_cast<std::uint8_t>(i % 7);
    event.level = static_cast<std::uint8_t>(i % 3);
    event.arg = static_cast<std::uint8_t>(i % 5);
    return event;
}

TEST(TraceEventCodec, RoundTripsEveryField)
{
    for (std::uint64_t i = 0; i < 200; ++i) {
        const TraceEvent event = makeEvent(i);
        unsigned char wire[kTraceRecordBytes];
        encodeTraceEvent(event, wire);
        TraceEvent back{};
        ASSERT_TRUE(decodeTraceEvent(wire, back));
        EXPECT_EQ(event, back) << "event " << i;
    }
}

TEST(TraceEventCodec, RejectsOutOfRangeType)
{
    unsigned char wire[kTraceRecordBytes] = {};
    wire[0] = static_cast<unsigned char>(kNumTraceEventTypes);
    TraceEvent back{};
    EXPECT_FALSE(decodeTraceEvent(wire, back));
    wire[0] = 0xff;
    EXPECT_FALSE(decodeTraceEvent(wire, back));
}

TEST(TraceEventCodec, EveryTypeHasAName)
{
    for (int i = 0; i < kNumTraceEventTypes; ++i) {
        const char *name =
            traceEventName(static_cast<TraceEventType>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
    }
}

TEST(TraceWriterReader, RoundTripsThroughFile)
{
    const std::string path = tempPath("roundtrip.trc");
    std::vector<TraceEvent> written;
    {
        TraceWriter writer;
        ASSERT_TRUE(writer.open(path));
        for (std::uint64_t i = 0; i < 1000; ++i) {
            written.push_back(makeEvent(i));
            writer.append(written.back());
        }
        EXPECT_EQ(writer.eventCount(), 1000u);
        ASSERT_TRUE(writer.close()) << writer.error();
    }
    std::vector<TraceEvent> read;
    std::string error;
    ASSERT_TRUE(readTraceFile(path, read, &error)) << error;
    EXPECT_EQ(read, written);
    std::remove(path.c_str());
}

TEST(TraceWriterReader, DigestMatchesFileBytes)
{
    const std::string path = tempPath("digest.trc");
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path));
    for (std::uint64_t i = 0; i < 64; ++i)
        writer.append(makeEvent(i));
    const std::uint64_t digest = writer.digest();
    ASSERT_TRUE(writer.close());

    const std::string bytes = readBytes(path);
    ASSERT_EQ(bytes.size(),
              kTraceHeaderBytes + 64 * kTraceRecordBytes);
    // The digest covers record bytes only, not the header.
    EXPECT_EQ(fnv64(bytes.data() + kTraceHeaderBytes,
                    bytes.size() - kTraceHeaderBytes),
              digest);
    std::remove(path.c_str());
}

TEST(TraceWriterReader, EmptyTraceIsValid)
{
    const std::string path = tempPath("empty.trc");
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path));
    ASSERT_TRUE(writer.close());
    std::vector<TraceEvent> read;
    std::string error;
    EXPECT_TRUE(readTraceFile(path, read, &error)) << error;
    EXPECT_TRUE(read.empty());
    std::remove(path.c_str());
}

TEST(TraceReaderFuzz, MissingFileIsCleanError)
{
    TraceReader reader;
    EXPECT_FALSE(reader.open(tempPath("does_not_exist.trc")));
    EXPECT_FALSE(reader.error().empty());
}

TEST(TraceReaderFuzz, TruncatedAtEveryPrefixNeverCrashes)
{
    const std::string path = tempPath("full.trc");
    {
        TraceWriter writer;
        ASSERT_TRUE(writer.open(path));
        for (std::uint64_t i = 0; i < 8; ++i)
            writer.append(makeEvent(i));
        ASSERT_TRUE(writer.close());
    }
    const std::string bytes = readBytes(path);
    const std::string cut = tempPath("cut.trc");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeBytes(cut, bytes.substr(0, len));
        std::vector<TraceEvent> events;
        std::string error;
        const bool ok = readTraceFile(cut, events, &error);
        if (len < kTraceHeaderBytes) {
            EXPECT_FALSE(ok) << "len " << len;
            EXPECT_FALSE(error.empty()) << "len " << len;
        } else if ((len - kTraceHeaderBytes) % kTraceRecordBytes) {
            // Ends mid-record: whole records before the cut are
            // kept, the partial tail is a reported error.
            EXPECT_FALSE(ok) << "len " << len;
            EXPECT_EQ(events.size(),
                      (len - kTraceHeaderBytes) / kTraceRecordBytes);
        } else {
            EXPECT_TRUE(ok) << "len " << len << ": " << error;
        }
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(TraceReaderFuzz, GarbageBytesNeverCrash)
{
    const std::string path = tempPath("garbage.trc");
    Rng rng{0x5eedf00dULL};
    for (int round = 0; round < 64; ++round) {
        const std::size_t size = rng.next() % 512;
        std::string bytes(size, '\0');
        for (char &c : bytes)
            c = static_cast<char>(rng.next());
        // Half the rounds get a valid header so record parsing runs.
        if (round % 2 == 0 && bytes.size() >= kTraceHeaderBytes) {
            std::memcpy(bytes.data(), kTraceMagic,
                        sizeof kTraceMagic);
            bytes[8] = 1; // version 1, little-endian
            bytes[9] = bytes[10] = bytes[11] = 0;
        }
        writeBytes(path, bytes);
        std::vector<TraceEvent> events;
        std::string error;
        const bool ok = readTraceFile(path, events, &error);
        if (!ok)
            EXPECT_FALSE(error.empty()) << "round " << round;
    }
    std::remove(path.c_str());
}

TEST(TraceReaderFuzz, WrongMagicAndVersionRejected)
{
    const std::string path = tempPath("magic.trc");
    std::string header(kTraceHeaderBytes, '\0');
    std::memcpy(header.data(), "NOTATRCE", 8);
    writeBytes(path, header);
    TraceReader reader;
    EXPECT_FALSE(reader.open(path));
    EXPECT_NE(reader.error().find("magic"), std::string::npos)
        << reader.error();

    std::memcpy(header.data(), kTraceMagic, sizeof kTraceMagic);
    header[8] = 99; // version
    writeBytes(path, header);
    TraceReader reader2;
    EXPECT_FALSE(reader2.open(path));
    EXPECT_NE(reader2.error().find("version"), std::string::npos)
        << reader2.error();
    std::remove(path.c_str());
}

TEST(TraceContextTallies, CountsPerTypeWithoutSink)
{
    TraceContext ctx;
    ctx.record(TraceEventType::kCacheMiss, 10, 0x40);
    ctx.record(TraceEventType::kCacheMiss, 11, 0x80);
    ctx.record(TraceEventType::kPrefetchIssued, 12, 0xc0);
    EXPECT_EQ(ctx.eventCount(TraceEventType::kCacheMiss), 2u);
    EXPECT_EQ(ctx.eventCount(TraceEventType::kPrefetchIssued), 1u);
    EXPECT_EQ(ctx.eventCount(TraceEventType::kCacheHit), 0u);
    EXPECT_EQ(ctx.totalEvents(), 3u);

    CounterRegistry registry;
    ctx.exportEventCounts(registry);
    const auto flat = registry.sorted();
    ASSERT_EQ(flat.size(), 2u); // only non-zero types exported
    EXPECT_EQ(flat[0].first, std::string("trace.cache_miss"));
    EXPECT_EQ(flat[0].second, 2u);
}

TEST(TraceContextTallies, SinkReceivesEveryEvent)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    for (std::uint64_t i = 0; i < 20; ++i)
        ctx.record(TraceEventType::kCacheHit, i, i * 64, i, 1, 0, 2);
    ASSERT_EQ(sink.events.size(), 20u);
    EXPECT_EQ(sink.events[7].cycle, 7u);
    EXPECT_EQ(sink.events[7].addr, 7u * 64);
    EXPECT_EQ(sink.events[7].arg, 2u);
}

TEST(TraceContextTallies, NullContextMacroIsSafe)
{
    TraceContext *ctx = nullptr;
    DOL_TRACE_EVENT(ctx, TraceEventType::kCacheMiss, 1, 2); // must not dereference
    SUCCEED();
}

TEST(CounterRegistry, SortedAndText)
{
    CounterRegistry registry;
    registry.counter("T2", "streams") = 5;
    registry.set("C1", "regions", 7);
    ++registry.counter("T2", "streams");
    EXPECT_EQ(registry.size(), 2u);
    const auto flat = registry.sorted();
    ASSERT_EQ(flat.size(), 2u);
    EXPECT_EQ(flat[0].first, std::string("C1.regions"));
    EXPECT_EQ(flat[1].first, std::string("T2.streams"));
    EXPECT_EQ(flat[1].second, 6u);
    EXPECT_EQ(registry.toText(), "C1.regions 7\nT2.streams 6\n");
    registry.clear();
    EXPECT_TRUE(registry.empty());
}

TEST(Fnv64, MatchesKnownVector)
{
    // FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
    EXPECT_EQ(fnv64("a", 1), 0xaf63dc4c8601ec8cull);
    // Seeded chaining equals one-shot hashing.
    const char text[] = "division of labor";
    const std::uint64_t whole = fnv64(text, sizeof text - 1);
    const std::uint64_t split =
        fnv64(text + 5, sizeof text - 6, fnv64(text, 5));
    EXPECT_EQ(split, whole);
}

} // namespace
