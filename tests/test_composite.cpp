/**
 * @file
 * Unit tests for the composite prefetcher's coordinator: ownership
 * claims (T2 -> P1 -> C1), routing of unclaimed instructions to extra
 * components, round-robin binding with hit-based rebinding, shunting,
 * destination overrides, and the registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/composite.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "mem/memory_image.hpp"
#include "mem/memory_system.hpp"
#include "prefetch/next_line.hpp"

namespace dol
{
namespace
{

class CompositeTest : public ::testing::Test
{
  protected:
    CompositeTest() : emitter(mem), tpc(&image)
    {
        ComponentId next = 1;
        tpc.assignIds([&](const std::string &name) {
            names.push_back(name);
            return next++;
        });
    }

    AccessInfo
    load(Pc pc, Addr addr, bool miss = true)
    {
        now += 12;
        AccessInfo info;
        info.pc = pc;
        info.mPc = pc;
        info.addr = addr;
        info.isLoad = true;
        info.l1PrimaryMiss = miss;
        info.l1Hit = !miss;
        info.when = now;
        info.completion = now + (miss ? 200 : 3);
        emitter.setContext(tpc.id(), now);
        tpc.train(info, emitter);
        return info;
    }

    MemoryImage image;
    MemorySystem mem;
    PrefetchEmitter emitter;
    CompositePrefetcher tpc;
    std::vector<std::string> names;
    Cycle now = 0;
};

TEST_F(CompositeTest, AssignsIdsToAllComponents)
{
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "T2");
    EXPECT_EQ(names[1], "P1");
    EXPECT_EQ(names[2], "C1");
    EXPECT_EQ(tpc.t2()->id(), 1);
    EXPECT_EQ(tpc.p1()->id(), 2);
    EXPECT_EQ(tpc.c1()->id(), 3);
}

TEST_F(CompositeTest, StridedInstructionBelongsToT2)
{
    for (int i = 0; i <= 20; ++i)
        load(0x100, 0x100000 + i * 64);
    EXPECT_EQ(tpc.ownerOf(0x100), CompositePrefetcher::Owner::kT2);
    EXPECT_GT(mem.stats().comp[1].issued, 0u);
    EXPECT_EQ(mem.stats().comp[3].issued, 0u)
        << "C1 must not see T2's instructions";
}

TEST_F(CompositeTest, NonStridedDenseInstructionFallsToC1)
{
    // Random-within-dense-regions accesses: T2 writes it off; C1
    // monitors and (eventually) marks it.
    Addr base = 0x400000;
    for (int r = 0; r < 6; ++r) {
        for (unsigned i = 0; i < 12; ++i) {
            load(0x200, base + ((i * 5) % 16) * kLineBytes);
        }
        base += kRegionBytes;
    }
    // Flush the region monitor to force verdicts.
    for (int i = 0; i < 40; ++i)
        load(0x999, 0x900000 + i * kRegionBytes);
    EXPECT_EQ(tpc.t2()->stateOf(0x200), InstrState::kNonStrided);
    EXPECT_EQ(tpc.ownerOf(0x200), CompositePrefetcher::Owner::kC1);
}

TEST_F(CompositeTest, UnclaimedInstructionsRouteToExtrasRoundRobin)
{
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    ComponentId next = 4;
    tpc.extras()[0]->setId(next++);
    tpc.extras()[1]->setId(next++);

    // Two random-pattern instructions: each must bind to an extra.
    // (Random accesses keep T2 unconvinced and C1 unimpressed.)
    Rng rng(3);
    for (int i = 0; i < 120; ++i) {
        load(0x300, 0x1000000 + lineAddr(rng.below(1u << 24)));
        load(0x304, 0x3000000 + lineAddr(rng.below(1u << 24)));
    }
    EXPECT_EQ(tpc.ownerOf(0x300), CompositePrefetcher::Owner::kExtra);
    EXPECT_EQ(tpc.ownerOf(0x304), CompositePrefetcher::Owner::kExtra);
    // Both extras produced next-line prefetches.
    EXPECT_GT(mem.stats().comp[4].issued, 0u);
    EXPECT_GT(mem.stats().comp[5].issued, 0u);
}

TEST_F(CompositeTest, HitRebindsInstructionToOwningExtra)
{
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.extras()[0]->setId(4);
    tpc.extras()[1]->setId(5);

    // Make 0x500 an extras-owned instruction first (random pattern
    // until T2 writes it off and C1 rejects it).
    Rng rng(8);
    for (int i = 0; i < 120; ++i)
        load(0x500, 0x5000000 + lineAddr(rng.below(1u << 24)));
    ASSERT_EQ(tpc.ownerOf(0x500), CompositePrefetcher::Owner::kExtra);

    // A hit on a line component 5 prefetched rebinds the instruction.
    AccessInfo info;
    info.pc = 0x500;
    info.mPc = 0x500;
    info.addr = 0x5000000;
    info.isLoad = true;
    info.l1Hit = true;
    info.l1HitPrefetched = true;
    info.l1HitComp = 5;
    info.when = ++now;
    emitter.setContext(tpc.id(), now);
    tpc.train(info, emitter);

    // Subsequent misses by this instruction train component 5 only.
    const auto before4 = mem.stats().comp[4].issued;
    const auto before5 = mem.stats().comp[5].issued;
    for (int i = 0; i < 20; ++i)
        load(0x500, 0x7000000 + lineAddr(rng.below(1u << 24)));
    EXPECT_EQ(mem.stats().comp[4].issued, before4);
    EXPECT_GT(mem.stats().comp[5].issued, before5);
}

TEST_F(CompositeTest, ClaimedInstructionsNeverReachExtras)
{
    // The filtering half of the coordinator, in contrast with
    // Shunt.ForwardsEverythingToAllComponents below: a T2-claimed
    // strided instruction trains no extra and acquires no binding.
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.extras()[0]->setId(4);
    tpc.extras()[1]->setId(5);

    for (int i = 0; i <= 40; ++i)
        load(0x100, 0x100000 + i * 64);
    EXPECT_EQ(tpc.ownerOf(0x100), CompositePrefetcher::Owner::kT2);
    EXPECT_EQ(tpc.boundExtraOf(0x100), -1);
    EXPECT_GT(mem.stats().comp[1].issued, 0u) << "T2 covers the stream";
    EXPECT_EQ(mem.stats().comp[4].issued, 0u);
    EXPECT_EQ(mem.stats().comp[5].issued, 0u);
}

TEST_F(CompositeTest, RoundRobinBindingCoversAllExtras)
{
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    ComponentId next = 4;
    for (auto &extra : tpc.extras())
        extra->setId(next++);

    // Three interleaved random-pattern instructions: the round-robin
    // counter must spread them across all three extras, one each.
    Rng rng(5);
    for (int i = 0; i < 120; ++i) {
        load(0x600, 0x1000000 + lineAddr(rng.below(1u << 24)));
        load(0x604, 0x3000000 + lineAddr(rng.below(1u << 24)));
        load(0x608, 0x5000000 + lineAddr(rng.below(1u << 24)));
    }
    std::vector<int> bindings = {tpc.boundExtraOf(0x600),
                                 tpc.boundExtraOf(0x604),
                                 tpc.boundExtraOf(0x608)};
    std::sort(bindings.begin(), bindings.end());
    EXPECT_EQ(bindings, (std::vector<int>{0, 1, 2}));
}

TEST_F(CompositeTest, PrefetchHitMovesTheBindingToTheOwningExtra)
{
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.extras()[0]->setId(4);
    tpc.extras()[1]->setId(5);

    Rng rng(8);
    for (int i = 0; i < 120; ++i)
        load(0x500, 0x5000000 + lineAddr(rng.below(1u << 24)));
    const int before = tpc.boundExtraOf(0x500);
    ASSERT_GE(before, 0);
    const int other = 1 - before;

    // A demand hit on a line the *other* extra prefetched transfers
    // the binding to it (paper section IV-E rebinding).
    AccessInfo info;
    info.pc = 0x500;
    info.mPc = 0x500;
    info.addr = 0x5000000;
    info.isLoad = true;
    info.l1Hit = true;
    info.l1HitPrefetched = true;
    info.l1HitComp = tpc.extras()[static_cast<std::size_t>(other)]->id();
    info.when = ++now;
    emitter.setContext(tpc.id(), now);
    tpc.train(info, emitter);
    EXPECT_EQ(tpc.boundExtraOf(0x500), other);
    EXPECT_EQ(tpc.ownerOf(0x500), CompositePrefetcher::Owner::kExtra);
}

TEST_F(CompositeTest, PrefetchHitRebindsToExactExtraAmongThree)
{
    // With three extras a wrong-neighbour rebind ((hit + 1) % n, the
    // rebind3 mutation's bug) is distinguishable from the correct
    // policy, which the two-extra test above cannot tell apart from
    // "rebind to the other one".
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(1));
    ComponentId next = 4;
    for (auto &extra : tpc.extras())
        extra->setId(next++);

    Rng rng(8);
    for (int i = 0; i < 120; ++i)
        load(0x500, 0x5000000 + lineAddr(rng.below(1u << 24)));
    const int before = tpc.boundExtraOf(0x500);
    ASSERT_GE(before, 0);
    // Rebind two hops away, so (hit + 1) % 3 would land elsewhere.
    const int target = (before + 2) % 3;

    AccessInfo info;
    info.pc = 0x500;
    info.mPc = 0x500;
    info.addr = 0x5000000;
    info.isLoad = true;
    info.l1Hit = true;
    info.l1HitPrefetched = true;
    info.l1HitComp =
        tpc.extras()[static_cast<std::size_t>(target)]->id();
    info.when = ++now;
    emitter.setContext(tpc.id(), now);
    tpc.train(info, emitter);
    EXPECT_EQ(tpc.boundExtraOf(0x500), target);

    // Only the rebound extra trains from here on.
    const auto frozen =
        mem.stats().comp[4 + static_cast<ComponentId>(before)].issued;
    const auto moving =
        mem.stats().comp[4 + static_cast<ComponentId>(target)].issued;
    for (int i = 0; i < 20; ++i)
        load(0x500, 0x7000000 + lineAddr(rng.below(1u << 24)));
    EXPECT_EQ(
        mem.stats().comp[4 + static_cast<ComponentId>(before)].issued,
        frozen);
    EXPECT_GT(
        mem.stats().comp[4 + static_cast<ComponentId>(target)].issued,
        moving);
}

TEST_F(CompositeTest, DestinationOverridesApply)
{
    CompositePrefetcher::Config config;
    config.t2Dest = kL2; // force T2's prefetches into L2
    CompositePrefetcher forced(&image, config, "TPC-L2");
    ComponentId next = 10;
    forced.assignIds([&](const std::string &) { return next++; });

    Cycle t = 0;
    for (int i = 0; i <= 30; ++i) {
        AccessInfo info;
        info.pc = 0x600;
        info.mPc = 0x600;
        info.addr = 0x600000 + i * 64;
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = t += 12;
        info.completion = info.when + 200;
        emitter.setContext(forced.id(), info.when);
        forced.train(info, emitter);
    }
    EXPECT_GT(mem.stats().level[kL2].prefetchFills, 0u);
    EXPECT_EQ(mem.stats().level[kL1].prefetchFills, 0u);
}

TEST_F(CompositeTest, StorageSumsComponents)
{
    const std::size_t total = tpc.storageBits();
    EXPECT_EQ(total, tpc.t2()->storageBits() +
                         tpc.p1()->storageBits() +
                         tpc.c1()->storageBits());
    // Table II: TPC = 4.57 KB.
    EXPECT_GT(total, 0.6 * 4.57 * 8 * 1024);
    EXPECT_LT(total, 1.4 * 4.57 * 8 * 1024);
}

TEST(Shunt, ForwardsEverythingToAllComponents)
{
    MemoryImage image;
    MemorySystem mem;
    PrefetchEmitter emitter(mem);

    ShuntPrefetcher shunt;
    shunt.addComponent(std::make_unique<NextLinePrefetcher>(1));
    shunt.addComponent(std::make_unique<NextLinePrefetcher>(2));
    ComponentId next = 1;
    shunt.assignIds([&](const std::string &) { return next++; });

    Cycle t = 0;
    for (int i = 0; i < 10; ++i) {
        AccessInfo info;
        info.pc = 0x700;
        info.mPc = 0x700;
        info.addr = 0x700000 + i * 4096;
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = t += 10;
        emitter.setContext(shunt.id(), info.when);
        shunt.train(info, emitter);
    }
    // Both components fired on the same accesses: overlapping effort.
    EXPECT_GT(mem.stats().comp[1].issued, 0u);
    EXPECT_GT(mem.stats().comp[2].issued, 0u);
}

TEST(AdaptiveCoordinator, SuspendsInaccurateExtras)
{
    using namespace dol;
    MemoryImage image;
    MemorySystem mem;
    PrefetchEmitter emitter(mem);

    CompositePrefetcher::Config config;
    config.adaptiveThrottle = true;
    config.throttleWindow = 256;
    config.throttleMinAccuracy = 0.2;
    config.suspendAccesses = 100000;
    CompositePrefetcher tpc(&image, config, "TPC-adaptive");
    tpc.addComponent(std::make_unique<NextLinePrefetcher>(2));
    ComponentId next = 1;
    tpc.assignIds([&](const std::string &) { return next++; });

    // Random accesses: next-line prefetches are never used. After a
    // throttle window the extra must be suspended.
    Rng rng(23);
    Cycle now = 0;
    for (int i = 0; i < 4000; ++i) {
        AccessInfo info;
        info.pc = 0x100;
        info.mPc = 0x100;
        info.addr = 0x10000000 + lineAddr(rng.below(1ull << 28));
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = now += 50;
        emitter.setContext(tpc.id(), info.when);
        tpc.train(info, emitter);
    }
    EXPECT_TRUE(tpc.extraSuspended(0));

    // Suspension stops the junk: issue counts freeze.
    const auto frozen = mem.stats().comp[4].issued;
    for (int i = 0; i < 500; ++i) {
        AccessInfo info;
        info.pc = 0x100;
        info.mPc = 0x100;
        info.addr = 0x10000000 + lineAddr(rng.below(1ull << 28));
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = now += 50;
        emitter.setContext(tpc.id(), info.when);
        tpc.train(info, emitter);
    }
    EXPECT_EQ(mem.stats().comp[4].issued, frozen);
}

TEST(Registry, BuildsEveryNamedConfiguration)
{
    MemoryImage image;
    for (const std::string &name : figureEightPrefetcherNames()) {
        auto pf = makePrefetcher(name, &image);
        ASSERT_NE(pf, nullptr) << name;
        EXPECT_GT(pf->storageBits(), 0u) << name;
    }
    EXPECT_NE(makePrefetcher("TPC+SMS", &image), nullptr);
    EXPECT_NE(makePrefetcher("SHUNT:TPC+VLDP", &image), nullptr);
    EXPECT_NE(makePrefetcher("T2P1", &image), nullptr);
    EXPECT_NE(makePrefetcher("Markov", &image), nullptr);
    EXPECT_NE(makePrefetcher("ISB", &image), nullptr);
    EXPECT_NE(makePrefetcher("NextLine", &image), nullptr);
    EXPECT_NE(makePrefetcher("StridePC", &image), nullptr);
}

TEST(Registry, CompositeWithExtraHasExtraComponent)
{
    MemoryImage image;
    auto pf = makePrefetcher("TPC+SMS", &image);
    auto *tpc = dynamic_cast<CompositePrefetcher *>(pf.get());
    ASSERT_NE(tpc, nullptr);
    ASSERT_EQ(tpc->extras().size(), 1u);
    EXPECT_EQ(tpc->extras()[0]->name(), "SMS");
}

TEST(Registry, MultiExtraNameBuildsEnlargedComposite)
{
    MemoryImage image;
    auto pf = makePrefetcher("TPC+SPP+Triangel+PChase", &image);
    auto *tpc = dynamic_cast<CompositePrefetcher *>(pf.get());
    ASSERT_NE(tpc, nullptr);
    ASSERT_EQ(tpc->extras().size(), 3u);
    EXPECT_EQ(tpc->extras()[0]->name(), "SPP");
    EXPECT_EQ(tpc->extras()[1]->name(), "Triangel");
    EXPECT_EQ(tpc->extras()[2]->name(), "PChase");

    auto shunt = makePrefetcher("SHUNT:TPC+VLDP+SMS", &image);
    ASSERT_NE(shunt.get(), nullptr);
    EXPECT_GT(shunt->storageBits(), 0u);
}

} // namespace
} // namespace dol
