/**
 * @file
 * ChampSim trace-ingestion tests: committed fixture decode (plain and
 * .xz), codec round trips, decode/expansion/replay determinism, a
 * malformed-input battery for the reader (truncated tails, garbage
 * flag bytes, empty and missing files, corrupt xz streams, overlong
 * register operands), the `--suite trace` discovery path, and a
 * golden cell pinning stream_gups x TPC+SPP end to end.
 *
 * Fixtures live in tests/traces/ (regenerate with make_fixtures.py);
 * the golden snapshot follows the test_golden_trace conventions,
 * including DOL_UPDATE_GOLDEN=1 regeneration.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "mem/memory_image.hpp"
#include "runner/sweep.hpp"
#include "sim/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "workloads/suite.hpp"
#include "workloads/trace_ingest.hpp"

namespace
{

using namespace dol;

const std::string kFixtureDir = DOL_TRACE_FIXTURE_DIR;
const std::string kPlainFixture = kFixtureDir + "/stream_gups.champsim";
const std::string kXzFixture = kFixtureDir + "/linked_walk.champsim.xz";

std::string
tempPath(const std::string &leaf)
{
    return testing::TempDir() + "trace_ingest." + leaf;
}

std::vector<std::uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

bool
sameRecord(const ChampSimInstr &a, const ChampSimInstr &b)
{
    std::uint8_t ba[ChampSimInstr::kBytes];
    std::uint8_t bb[ChampSimInstr::kBytes];
    a.pack(ba);
    b.pack(bb);
    return std::equal(ba, ba + ChampSimInstr::kBytes, bb);
}

// `--suite trace` scans $DOL_TRACE_DIR once per process, so this test
// is declared first and is the binary's only traceSuite() consumer
// group; it pins the env var before the first scan.
TEST(TraceSuite, DiscoversFixturesSortedAndFindWorkloadResolves)
{
    ASSERT_EQ(setenv("DOL_TRACE_DIR", kFixtureDir.c_str(), 1), 0);
    const std::vector<WorkloadSpec> &suite = traceSuite();
    ASSERT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite[0].name, "trace:linked_walk");
    EXPECT_EQ(suite[1].name, "trace:stream_gups");
    EXPECT_EQ(suite[0].suite, "trace");

    // findWorkload falls through the synthetic suites to the traces.
    const WorkloadSpec &spec = findWorkload("trace:stream_gups");
    MemoryImage image;
    auto kernel = spec.factory(image);
    Instr instr;
    ASSERT_TRUE(kernel->next(instr));

    // The trace suite must stay out of the deterministic all-suites
    // list (its content depends on the working directory).
    for (const WorkloadSpec &all : allWorkloads())
        EXPECT_NE(all.suite, "trace") << all.name;
}

TEST(TraceIngest, DecodesPlainFixture)
{
    std::vector<ChampSimInstr> records;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(kPlainFixture, records, &error))
        << error;
    EXPECT_EQ(records.size(), 1320u); // 220 iterations x 6 records
    EXPECT_EQ(records[0].ip, 0x400000u);
    EXPECT_EQ(records[0].srcMem[0], 0x10000u);

    MemoryImage image;
    TraceIngestStats stats;
    const std::vector<Instr> instrs =
        expandChampSimTrace(records, image, &stats);
    EXPECT_EQ(stats.records, records.size());
    EXPECT_GT(stats.loads, 0u);
    EXPECT_GT(stats.stores, 0u);
    EXPECT_GT(stats.branches, 0u);
    EXPECT_EQ(stats.instrs, instrs.size());
}

TEST(TraceIngest, DecodesXzFixture)
{
    std::vector<ChampSimInstr> records;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(kXzFixture, records, &error))
        << error;
    EXPECT_EQ(records.size(), 1088u); // 4 walks x (256 + 16 branches)
    EXPECT_EQ(records[0].ip, 0x401000u);

    MemoryImage image;
    TraceIngestStats stats;
    expandChampSimTrace(records, image, &stats);
    EXPECT_GT(stats.loads, 0u);
    EXPECT_EQ(stats.stores, 0u);
}

TEST(TraceIngest, WriteReadRoundTripIsExact)
{
    std::vector<ChampSimInstr> records;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(kPlainFixture, records, &error));

    const std::string path = tempPath("roundtrip.champsim");
    ASSERT_TRUE(writeChampSimTrace(path, records, &error)) << error;
    std::vector<ChampSimInstr> again;
    ASSERT_TRUE(readChampSimTrace(path, again, &error)) << error;
    ASSERT_EQ(again.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_TRUE(sameRecord(records[i], again[i]))
            << "record " << i << " changed across write/read";
    }
    std::remove(path.c_str());
}

TEST(TraceIngest, DecodeAndExpansionAreDeterministic)
{
    std::vector<ChampSimInstr> first;
    std::vector<ChampSimInstr> second;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(kXzFixture, first, &error));
    ASSERT_TRUE(readChampSimTrace(kXzFixture, second, &error));
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_TRUE(sameRecord(first[i], second[i]));

    MemoryImage image_a;
    MemoryImage image_b;
    const std::vector<Instr> a = expandChampSimTrace(first, image_a);
    const std::vector<Instr> b = expandChampSimTrace(second, image_b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc);
        ASSERT_EQ(a[i].addr, b[i].addr);
        ASSERT_EQ(a[i].value, b[i].value);
        ASSERT_EQ(a[i].op, b[i].op);
    }
}

TEST(TraceIngest, KernelResetReplaysIdentically)
{
    MemoryImage image;
    TraceIngestKernel kernel(image, kPlainFixture, /*loop=*/false);
    std::vector<Instr> first;
    Instr instr;
    while (kernel.next(instr))
        first.push_back(instr);
    ASSERT_EQ(first.size(), kernel.instrCount());

    kernel.reset();
    std::vector<Instr> second;
    while (kernel.next(instr))
        second.push_back(instr);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i].pc, second[i].pc);
        ASSERT_EQ(first[i].addr, second[i].addr);
        ASSERT_EQ(first[i].value, second[i].value);
    }
}

TEST(TraceIngest, LoadValuesMatchTheBakedImage)
{
    // The deterministic heap contract: the value a trace load returns
    // equals what the MemoryImage holds for that address at first
    // touch, so P1-style pointer dereferences observe trace-consistent
    // bytes.
    std::vector<ChampSimInstr> records;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(kXzFixture, records, &error));
    MemoryImage image;
    const std::vector<Instr> instrs =
        expandChampSimTrace(records, image);
    std::size_t checked = 0;
    for (const Instr &in : instrs) {
        if (!in.isLoad())
            continue;
        EXPECT_EQ(in.value, image.read64(in.addr))
            << "load value diverged from the baked heap";
        if (++checked == 64)
            break; // linked_walk revisits, 64 distinct checks suffice
    }
    EXPECT_EQ(checked, 64u);
}

// ---- malformed-input battery (framed-reader mutation idiom) --------

TEST(TraceIngestReader, RejectsTruncatedTail)
{
    std::vector<std::uint8_t> bytes = readBytes(kPlainFixture);
    bytes.resize(bytes.size() - 7); // no longer a multiple of 64
    const std::string path = tempPath("truncated.champsim");
    writeBytes(path, bytes);
    std::vector<ChampSimInstr> records;
    std::string error;
    EXPECT_FALSE(readChampSimTrace(path, records, &error));
    EXPECT_NE(error.find("truncat"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceIngestReader, RejectsEmptyTrace)
{
    const std::string path = tempPath("empty.champsim");
    writeBytes(path, {});
    std::vector<ChampSimInstr> records;
    std::string error;
    EXPECT_FALSE(readChampSimTrace(path, records, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(TraceIngestReader, RejectsMissingFile)
{
    std::vector<ChampSimInstr> records;
    std::string error;
    EXPECT_FALSE(readChampSimTrace(
        tempPath("does_not_exist.champsim"), records, &error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceIngestReader, RejectsGarbageFlagBytes)
{
    std::vector<std::uint8_t> bytes = readBytes(kPlainFixture);
    bytes[8] = 0x37; // is_branch must be 0 or 1
    const std::string path = tempPath("garbage.champsim");
    writeBytes(path, bytes);
    std::vector<ChampSimInstr> records;
    std::string error;
    EXPECT_FALSE(readChampSimTrace(path, records, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(TraceIngestReader, RejectsCorruptXzStream)
{
    const std::string path = tempPath("corrupt.champsim.xz");
    writeBytes(path, {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01});
    std::vector<ChampSimInstr> records;
    std::string error;
    EXPECT_FALSE(readChampSimTrace(path, records, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(TraceIngestReader, FoldsOverlongRegisterOperands)
{
    // ChampSim traces from other ISAs carry register ids past our 64;
    // they fold modulo kNumRegs (and are counted) instead of erroring.
    std::vector<std::uint8_t> bytes = readBytes(kPlainFixture);
    bytes.resize(ChampSimInstr::kBytes);
    bytes[10] = 200; // destination register far past kNumRegs
    bytes[12] = 64;  // first out-of-range source id
    const std::string path = tempPath("overlong.champsim");
    writeBytes(path, bytes);
    std::vector<ChampSimInstr> records;
    std::string error;
    ASSERT_TRUE(readChampSimTrace(path, records, &error)) << error;
    MemoryImage image;
    TraceIngestStats stats;
    const std::vector<Instr> instrs =
        expandChampSimTrace(records, image, &stats);
    EXPECT_EQ(stats.clampedRegs, 2u);
    ASSERT_FALSE(instrs.empty());
    for (const Instr &in : instrs) {
        EXPECT_TRUE(in.dst == kNoReg || in.dst < kNumRegs);
        EXPECT_TRUE(in.src1 == kNoReg || in.src1 < kNumRegs);
    }
    std::remove(path.c_str());
}

TEST(TraceIngestReader, SingleByteMutationsNeverCrash)
{
    // Flip one byte at a time across the first record and the tail:
    // every mutant must either decode or fail with a message — no
    // crashes, no silent empty successes.
    const std::vector<std::uint8_t> original = readBytes(kPlainFixture);
    for (std::size_t offset = 0; offset < ChampSimInstr::kBytes;
         offset += 3) {
        std::vector<std::uint8_t> bytes = original;
        bytes[offset] ^= 0xa5;
        const std::string path = tempPath("mutant.champsim");
        writeBytes(path, bytes);
        std::vector<ChampSimInstr> records;
        std::string error;
        const bool ok = readChampSimTrace(path, records, &error);
        if (ok)
            EXPECT_EQ(records.size(), original.size() / 64);
        else
            EXPECT_FALSE(error.empty());
        std::remove(path.c_str());
    }
}

TEST(TraceIngest, StemStripsKnownSuffixes)
{
    EXPECT_EQ(champSimTraceStem("stream_gups.champsim"),
              "stream_gups");
    EXPECT_EQ(champSimTraceStem("linked_walk.champsim.xz"),
              "linked_walk");
    EXPECT_EQ(champSimTraceStem("dir/sub/mcf_46B.champsim.xz"),
              "mcf_46B");
    EXPECT_EQ(champSimTraceStem("plain.xz"), "plain");
    EXPECT_EQ(champSimTraceStem("noext"), "noext");
}

// ---- golden cell ---------------------------------------------------

bool
updateGolden()
{
    const char *env = std::getenv("DOL_UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Mirrors test_golden_trace's snapshot formula (same per-cell DRAM
 *  seed, tracing on, counter-registry text) for the fixture cell. */
std::string
runTraceCellSnapshot()
{
    const char *workload = "trace:stream_gups";
    const char *prefetcher = "TPC+SPP";
    constexpr std::uint64_t kInstrs = 20000;

    SimConfig config;
    config.maxInstrs = kInstrs;
    config.mem.dram.rngSeed =
        runner::cellSeed(workload, prefetcher, "");
    ExperimentRunner runner(config);

    const std::string fixture = kPlainFixture;
    WorkloadSpec spec{workload, "trace",
                      [fixture](MemoryImage &image) {
                          return std::make_unique<TraceIngestKernel>(
                              image, fixture);
                      }};
    RunOptions options;
    options.collectCounters = true;
    options.tracePath = tempPath("golden.trc");
    const RunOutput out = runner.run(spec, prefetcher, options);

    std::string text = "dol-golden-v1 ";
    text += workload;
    text += ' ';
    text += prefetcher;
    text += " instrs=" + std::to_string(kInstrs) + "\n";
    text += out.counters.toText();
    std::remove(options.tracePath.c_str());
    return text;
}

TEST(TraceIngestGolden, StreamGupsTpcSppMatchesSnapshot)
{
    const std::string path = std::string(DOL_GOLDEN_DIR) +
                             "/trace_stream_gups.TPC+SPP.golden";
    const std::string actual = runTraceCellSnapshot();
    if (updateGolden()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << actual;
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        GTEST_SKIP() << "updated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing - regenerate with DOL_UPDATE_GOLDEN=1";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "trace golden cell drifted; regenerate with "
           "DOL_UPDATE_GOLDEN=1 if intentional";
}

} // namespace
