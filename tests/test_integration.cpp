/**
 * @file
 * Integration tests: whole-system runs over real suite workloads for
 * every evaluated prefetcher, the paper's headline relationships
 * (compositing beats shunting; TPC's accuracy edge), and the
 * multicore path.
 */

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/multicore.hpp"

namespace dol
{
namespace
{

SimConfig
integrationConfig()
{
    SimConfig config;
    config.maxInstrs = 80000;
    return config;
}

/** Every headline prefetcher stays in a sane envelope on key apps. */
class PrefetcherEnvelope
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PrefetcherEnvelope, MetricsWithinBounds)
{
    ExperimentRunner runner(integrationConfig());
    for (const char *workload :
         {"libquantum.syn", "gcc.syn", "omnetpp.syn"}) {
        const RunOutput out =
            runner.run(findWorkload(workload), GetParam());
        EXPECT_GT(out.speedup(), 0.5) << GetParam() << "/" << workload;
        EXPECT_LT(out.speedup(), 12.0) << GetParam() << "/" << workload;
        EXPECT_LE(out.scope, 1.0001) << GetParam() << "/" << workload;
        EXPECT_GE(out.scope, 0.0) << GetParam() << "/" << workload;
        EXPECT_LE(out.effAccuracyL1, 1.05)
            << GetParam() << "/" << workload;
        EXPECT_GT(out.trafficNormalized, 0.5)
            << GetParam() << "/" << workload;
        EXPECT_LT(out.trafficNormalized, 3.0)
            << GetParam() << "/" << workload;
    }
}

INSTANTIATE_TEST_SUITE_P(FigureEight, PrefetcherEnvelope,
                         ::testing::Values("GHB-PC/DC", "FDP", "VLDP",
                                           "SPP", "BOP", "AMPM", "SMS",
                                           "TPC", "Markov", "ISB",
                                           "TPC+SMS",
                                           "SHUNT:TPC+VLDP"));

TEST(Integration, TpcWinsOnStreamsAndKeepsTrafficLow)
{
    ExperimentRunner runner(integrationConfig());
    const auto &spec = findWorkload("libquantum.syn");

    const RunOutput tpc = runner.run(spec, "TPC");
    EXPECT_GT(tpc.speedup(), 1.5);
    EXPECT_GT(tpc.effAccuracyL1, 0.8);
    EXPECT_LT(tpc.trafficNormalized, 1.15);
}

TEST(Integration, TpcAccuracyBeatsMonolithicsOnPointerApp)
{
    // The paper's core claim: on patterns monolithic prefetchers
    // guess at, TPC either covers them accurately (P1) or leaves them
    // alone — its effective accuracy stays high where theirs
    // collapses.
    ExperimentRunner runner(integrationConfig());
    const auto &spec = findWorkload("mcf.syn");

    const RunOutput tpc = runner.run(spec, "TPC");
    EXPECT_GT(tpc.effAccuracyL1, 0.5);
    for (const char *mono : {"SMS", "BOP"}) {
        const RunOutput out = runner.run(spec, mono);
        EXPECT_GT(tpc.effAccuracyL1, out.effAccuracyL1) << mono;
    }
}

TEST(Integration, CompositingNeverLosesToShunting)
{
    // Figure 15's claim on one representative configuration: the
    // coordinated composite at least matches the uncoordinated shunt.
    ExperimentRunner runner(integrationConfig());
    const auto &spec = findWorkload("gcc.syn");
    const RunOutput composed = runner.run(spec, "TPC+SMS");
    const RunOutput shunted = runner.run(spec, "SHUNT:TPC+SMS");
    EXPECT_GE(composed.speedup(), shunted.speedup() - 0.02);
}

TEST(Integration, StratifiedCountsCoverAllIssues)
{
    ExperimentRunner runner(integrationConfig());
    const RunOutput out =
        runner.run(findWorkload("libquantum.syn"), "TPC");
    const std::uint64_t categorized = out.categories[0].issued +
                                      out.categories[1].issued +
                                      out.categories[2].issued;
    EXPECT_EQ(categorized, out.prefetchesIssued);
    // A stream app's prefetches are overwhelmingly LHF.
    EXPECT_GT(out.categories[0].issued, out.prefetchesIssued / 2);
}

TEST(Integration, ComponentBreakdownSumsToTotal)
{
    ExperimentRunner runner(integrationConfig());
    const RunOutput out = runner.run(findWorkload("mcf.syn"), "TPC");
    std::uint64_t sum = 0;
    for (const auto &comp : out.components)
        sum += comp.issued;
    EXPECT_EQ(sum, out.prefetchesIssued);
    ASSERT_EQ(out.components.size(), 3u);
    EXPECT_EQ(out.components[0].name, "T2");
    EXPECT_EQ(out.components[1].name, "P1");
    EXPECT_EQ(out.components[2].name, "C1");
}

TEST(Integration, ExcludeSetNarrowsFocus)
{
    ExperimentRunner runner(integrationConfig());
    const auto &spec = findWorkload("gcc.syn");
    const RunOutput tpc = runner.run(spec, "TPC");
    ASSERT_NE(tpc.pfp, nullptr);

    RunOptions options;
    options.exclude = tpc.pfp;
    const RunOutput sms = runner.run(spec, "SMS", options);
    // The focus region is a subset: focus issues <= total issues.
    EXPECT_LE(sms.focus.issued, sms.prefetchesIssued);
    EXPECT_LE(sms.focusScope, 1.0001);
}

TEST(Integration, ForcedDestinationChangesFillLevel)
{
    ExperimentRunner runner(integrationConfig());
    const auto &spec = findWorkload("libquantum.syn");

    RunOptions to_l2;
    to_l2.forceDest = kL2;
    const RunOutput l2run = runner.run(spec, "BOP", to_l2);
    const RunOutput l1run = runner.run(spec, "BOP");
    // Prefetching a stream into L1 is at least as good as L2 (the
    // paper's Figure 16 finding for LHF-heavy apps).
    EXPECT_GE(l1run.speedup(), l2run.speedup() - 0.03);
}

TEST(Multicore, MixRunsAndProducesWeightedSpeedup)
{
    SimConfig config;
    config.maxInstrs = 30000;
    const auto mixes = makeMixes(1, 7);
    ASSERT_EQ(mixes.size(), 1u);

    MulticoreSimulator baseline(config, mixes[0], "");
    const MulticoreResult base = baseline.run();
    ASSERT_EQ(base.ipc.size(), 4u);
    for (double ipc : base.ipc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LT(ipc, 4.5);
    }

    MulticoreSimulator with_tpc(config, mixes[0], "TPC");
    const MulticoreResult result = with_tpc.run();
    const double ws = result.weightedSpeedup(base);
    EXPECT_GT(ws, 0.7);
    EXPECT_LT(ws, 8.0);
}

TEST(Multicore, DropPolicyExperimentRuns)
{
    SimConfig config;
    config.maxInstrs = 25000;
    // Stress the controller queue so drops actually happen.
    config.mem.dram.queueCapacity = 8;
    const auto mixes = makeMixes(1, 11);

    config.mem.dram.dropPolicy = DropPolicy::kRandomPrefetch;
    MulticoreSimulator random_policy(config, mixes[0], "TPC");
    const auto random_result = random_policy.run();

    config.mem.dram.dropPolicy = DropPolicy::kLowPriorityPrefetch;
    MulticoreSimulator smart_policy(config, mixes[0], "TPC");
    const auto smart_result = smart_policy.run();

    // Both complete; the smart policy never drops more demands.
    EXPECT_EQ(random_result.ipc.size(), 4u);
    EXPECT_EQ(smart_result.ipc.size(), 4u);
}

} // namespace
} // namespace dol
