/**
 * @file
 * Unit tests for the memory hierarchy orchestration: level latencies,
 * fill paths, shadow (alternate-reality) tags, prefetch outcomes, and
 * the induced-miss credit mechanism.
 */

#include <gtest/gtest.h>

#include "mem/listener.hpp"
#include "mem/memory_system.hpp"

namespace dol
{
namespace
{

/** Captures listener events for verification. */
class RecordingListener : public MemListener
{
  public:
    struct Induced
    {
        unsigned level;
        Addr line;
        std::vector<ComponentId> comps;
    };

    void
    shadowMiss(unsigned level, Addr line, Pc) override
    {
        if (level == kL1)
            shadowL1.push_back(line);
    }

    void
    prefetchIssued(ComponentId comp, Addr line, unsigned, Cycle) override
    {
        issued.push_back({comp, line});
    }

    void
    prefetchUsed(ComponentId comp, unsigned, Addr line) override
    {
        used.push_back({comp, line});
    }

    void
    inducedMiss(unsigned level, Addr line,
                std::span<const ComponentId> comps) override
    {
        induced.push_back(
            {level, line, {comps.begin(), comps.end()}});
    }

    void
    prefetchFill(ComponentId comp, Addr line, Cycle completion) override
    {
        fills.push_back({comp, line});
        lastCompletion = completion;
    }

    std::vector<Addr> shadowL1;
    std::vector<std::pair<ComponentId, Addr>> issued, used, fills;
    std::vector<Induced> induced;
    Cycle lastCompletion = 0;
};

TEST(MemorySystem, HitLatenciesIncreaseWithDepth)
{
    MemorySystem mem;
    // Cold miss: full DRAM trip.
    const auto cold = mem.demandLoad(0x10000, 1, 0);
    EXPECT_TRUE(cold.l1PrimaryMiss);
    EXPECT_GT(cold.completion, 200u);

    // Warm L1 hit.
    const Cycle t = cold.completion + 10;
    const auto warm = mem.demandLoad(0x10000, 1, t);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.completion - t, mem.cacheAt(kL1).latency());
}

TEST(MemorySystem, FillsPropagateToAllLevels)
{
    MemorySystem mem;
    mem.demandLoad(0x20000, 1, 0);
    EXPECT_NE(mem.cacheAt(kL1).find(0x20000), nullptr);
    EXPECT_NE(mem.cacheAt(kL2).find(0x20000), nullptr);
    EXPECT_NE(mem.cacheAt(kL3).find(0x20000), nullptr);
}

TEST(MemorySystem, ShadowMirrorsDemandStream)
{
    MemorySystem mem;
    RecordingListener listener;
    mem.setListener(&listener);

    mem.demandLoad(0x1000, 1, 0);
    mem.demandLoad(0x1000, 1, 1000); // hit, no shadow miss
    mem.demandLoad(0x2000, 1, 2000);

    EXPECT_EQ(listener.shadowL1.size(), 2u);
    EXPECT_EQ(mem.stats().level[kL1].shadowMisses, 2u);
    EXPECT_EQ(mem.stats().level[kL1].primaryMisses, 2u);
}

TEST(MemorySystem, PrefetchOutcomesAndFilter)
{
    MemorySystem mem;
    RecordingListener listener;
    mem.setListener(&listener);

    // Fresh prefetch issues and fills.
    EXPECT_EQ(mem.prefetch(0x40000, kL1, 2, 0), PrefetchOutcome::kIssued);
    EXPECT_EQ(listener.issued.size(), 1u);
    EXPECT_EQ(listener.fills.size(), 1u);
    EXPECT_GT(listener.lastCompletion, 100u);

    // Duplicate: already present at the destination.
    EXPECT_EQ(mem.prefetch(0x40000, kL1, 2, 1),
              PrefetchOutcome::kFilteredPresent);
    EXPECT_EQ(mem.stats().comp[2].filtered, 1u);
    EXPECT_EQ(mem.stats().comp[2].issued, 1u);
}

TEST(MemorySystem, PrefetchUsedCreditsComponent)
{
    MemorySystem mem;
    RecordingListener listener;
    mem.setListener(&listener);

    mem.prefetch(0x50000, kL1, 3, 0);
    const auto res = mem.demandLoad(0x50000, 7, 500000);
    EXPECT_TRUE(res.l1Hit);
    EXPECT_TRUE(res.l1HitPrefetched);
    EXPECT_EQ(res.l1HitComp, 3);
    ASSERT_EQ(listener.used.size(), 1u);
    EXPECT_EQ(listener.used[0].first, 3);
    EXPECT_EQ(mem.stats().comp[3].used, 1u);

    // Second use of the same line earns no second credit.
    mem.demandLoad(0x50000, 7, 500100);
    EXPECT_EQ(listener.used.size(), 1u);
}

TEST(MemorySystem, LatePrefetchPaysResidualButBounded)
{
    MemorySystem mem;
    // Issue the prefetch "now"; demand arrives 10 cycles later — far
    // before the fill completes.
    mem.prefetch(0x60000, kL1, 2, 1000);
    const auto res = mem.demandLoad(0x60000, 1, 1010);
    EXPECT_GT(res.completion, 1010u + 50);
    // But never worse than refetching the line itself.
    EXPECT_LT(res.completion, 1010u + 400);
    EXPECT_EQ(mem.stats().level[kL1].latePrefetchHits, 1u);
}

TEST(MemorySystem, InducedMissChargesPrefetchedLinesInSet)
{
    MemParams params;
    // Tiny L1: 2 sets x 2 ways, so pollution is easy to force.
    params.l1.sizeBytes = 4 * kLineBytes;
    params.l1.assoc = 2;
    MemorySystem mem(params);
    RecordingListener listener;
    mem.setListener(&listener);

    // Demand-load A and B (same set: 2-set cache, stride 128).
    const Addr a = 0x0, b = 0x1000;
    mem.demandLoad(a, 1, 0);
    mem.demandLoad(b, 1, 1000);

    // Prefetch two junk lines into the same set: evicts A and B from
    // the tiny L1 (but not from the shadow L1, which sees no
    // prefetches... it has the same tiny geometry, so A and B are
    // still resident there).
    mem.prefetch(0x2000, kL1, 4, 2000);
    mem.prefetch(0x3000, kL1, 4, 2100);

    // Re-access A: real miss, shadow hit -> induced, charged to 4.
    mem.demandLoad(a, 1, 500000);
    ASSERT_GE(listener.induced.size(), 1u);
    EXPECT_EQ(listener.induced[0].level, kL1);
    EXPECT_GT(mem.stats().comp[4].inducedCredit, 0.9);
}

TEST(MemorySystem, DirtyEvictionsWriteBack)
{
    MemParams params;
    params.l1.sizeBytes = 4 * kLineBytes;
    params.l1.assoc = 1; // direct-mapped 4-line L1
    MemorySystem mem(params);

    mem.demandStore(0x0, 1, 0);
    // Conflict line evicts the dirty one into L2.
    mem.demandLoad(0x100 * 4, 1, 1000);
    EXPECT_GE(mem.stats().level[kL1].writebacks, 1u);
    ASSERT_NE(mem.cacheAt(kL2).find(0x0), nullptr);
    EXPECT_TRUE(mem.cacheAt(kL2).find(0x0)->dirty);
}

TEST(MemorySystem, PrefetchToL2DoesNotFillL1)
{
    MemorySystem mem;
    EXPECT_EQ(mem.prefetch(0x70000, kL2, 2, 0),
              PrefetchOutcome::kIssued);
    EXPECT_EQ(mem.cacheAt(kL1).find(0x70000), nullptr);
    EXPECT_NE(mem.cacheAt(kL2).find(0x70000), nullptr);
    EXPECT_NE(mem.cacheAt(kL3).find(0x70000), nullptr);

    // The demand then misses L1 but hits L2.
    const auto res = mem.demandLoad(0x70000, 1, 500000);
    EXPECT_TRUE(res.l1PrimaryMiss);
    EXPECT_TRUE(res.l2Hit);
}

TEST(MemorySystem, CancelRemovesUnusedPrefetchOnly)
{
    MemorySystem mem;
    mem.prefetch(0x80000, kL1, 2, 0);
    mem.cancelPrefetchLine(0x80000);
    EXPECT_EQ(mem.cacheAt(kL1).find(0x80000), nullptr);

    mem.prefetch(0x90000, kL1, 2, 0);
    mem.demandLoad(0x90000, 1, 500000); // marks it used
    mem.cancelPrefetchLine(0x90000);
    EXPECT_NE(mem.cacheAt(kL1).find(0x90000), nullptr);
}

TEST(MemorySystem, SecondaryMissesAreNotPrimary)
{
    MemorySystem mem;
    const auto first = mem.demandLoad(0xa0000, 1, 0);
    EXPECT_TRUE(first.l1PrimaryMiss);
    // Back-to-back access while the fetch is in flight.
    const auto second = mem.demandLoad(0xa0000, 1, 5);
    EXPECT_FALSE(second.l1PrimaryMiss);
    EXPECT_EQ(mem.stats().level[kL1].secondaryMisses, 1u);
    EXPECT_EQ(mem.stats().level[kL1].primaryMisses, 1u);
}

TEST(MemorySystem, SharedL3IsVisibleAcrossCores)
{
    MemParams params;
    auto shared = std::make_shared<SharedMemory>(params, 2);
    MemorySystem core0(params, shared);
    MemorySystem core1(params, shared);

    core0.demandLoad(0xb0000, 1, 0);
    // Core 1 misses privately but hits the shared L3.
    const auto res = core1.demandLoad(0xb0000, 1, 500000);
    EXPECT_TRUE(res.l3Hit);
    EXPECT_FALSE(res.l1Hit);
}

} // namespace
} // namespace dol
