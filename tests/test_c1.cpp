/**
 * @file
 * Unit tests for the C1 region component: instruction monitoring, the
 * density verdict (> 6/16 lines, probability > 3/4 over 4 regions),
 * and the carpet-bombing region prefetch into L2.
 */

#include <gtest/gtest.h>

#include "core/c1.hpp"
#include "mem/memory_system.hpp"
#include "trace/context.hpp"

namespace dol
{
namespace
{

class C1Test : public ::testing::Test
{
  protected:
    C1Test() : emitter(mem)
    {
        c1.setId(3);
    }

    /** One training access by @p m_pc at @p addr (primary miss). */
    void
    access(Pc m_pc, Addr addr)
    {
        now += 10;
        AccessInfo info;
        info.pc = m_pc;
        info.mPc = m_pc;
        info.addr = addr;
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = now;
        info.completion = now + 200;
        emitter.setContext(3, now);
        c1.train(info, emitter);
    }

    /** Touch @p lines lines of the 1 KB region at @p base. */
    void
    touchRegion(Pc m_pc, Addr base, unsigned lines)
    {
        for (unsigned i = 0; i < lines; ++i)
            access(m_pc, base + i * kLineBytes);
    }

    MemorySystem mem;
    PrefetchEmitter emitter;
    C1Prefetcher c1;
    Cycle now = 0;
};

TEST_F(C1Test, ConsiderAcceptsUntilImFull)
{
    for (Pc pc = 1; pc <= 16; ++pc)
        EXPECT_TRUE(c1.considerInstruction(pc * 4));
    // The IM never evicts: entry 17 is declined.
    EXPECT_FALSE(c1.considerInstruction(17 * 4));
    // But an already-monitored instruction is always accepted.
    EXPECT_TRUE(c1.considerInstruction(4));
    EXPECT_TRUE(c1.isMonitored(4));
}

TEST_F(C1Test, DenseInstructionGetsMarked)
{
    ASSERT_TRUE(c1.considerInstruction(0x100));
    // Four dense regions (12 > 6 lines each) and their evictions:
    // regions are evicted by touching many other regions.
    Addr base = 0x100000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x100, base, 12);
        base += kRegionBytes;
    }
    // Flush the RM with unrelated single-line regions to force the
    // verdict (TotalRegions reaches 4).
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x900000 + i * kRegionBytes);

    EXPECT_TRUE(c1.isMarked(0x100));
}

TEST_F(C1Test, SparseInstructionIsNotMarked)
{
    ASSERT_TRUE(c1.considerInstruction(0x200));
    Addr base = 0x300000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x200, base, 3); // 3 of 16 lines: sparse
        base += kRegionBytes;
    }
    for (int i = 0; i < 32; ++i)
        access(0x999, 0xa00000 + i * kRegionBytes);

    EXPECT_FALSE(c1.isMarked(0x200));
    // And the IM slot was vacated for the next candidate.
    EXPECT_FALSE(c1.isMonitored(0x200));
}

TEST_F(C1Test, MixedDensityBelowThreeQuartersIsNotMarked)
{
    ASSERT_TRUE(c1.considerInstruction(0x300));
    // 2 dense + 2 sparse regions: probability 1/2 < 3/4.
    touchRegion(0x300, 0x500000, 12);
    touchRegion(0x300, 0x500000 + kRegionBytes, 12);
    touchRegion(0x300, 0x500000 + 2 * kRegionBytes, 2);
    touchRegion(0x300, 0x500000 + 3 * kRegionBytes, 2);
    for (int i = 0; i < 32; ++i)
        access(0x999, 0xb00000 + i * kRegionBytes);

    EXPECT_FALSE(c1.isMarked(0x300));
}

TEST_F(C1Test, MarkedInstructionTriggersRegionPrefetchToL2)
{
    ASSERT_TRUE(c1.considerInstruction(0x400));
    Addr base = 0x700000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x400, base, 12);
        base += kRegionBytes;
    }
    for (int i = 0; i < 32; ++i)
        access(0x999, 0xc00000 + i * kRegionBytes);
    ASSERT_TRUE(c1.isMarked(0x400));

    const std::uint64_t before = c1.regionsPrefetched();
    const Addr fresh = 0xd00000;
    access(0x400, fresh + 5 * kLineBytes);
    EXPECT_EQ(c1.regionsPrefetched(), before + 1);

    // All 16 lines of the region land in L2 (not L1).
    unsigned in_l2 = 0, in_l1 = 0;
    for (unsigned i = 0; i < kRegionLineCount; ++i) {
        in_l2 += mem.cacheAt(kL2).find(fresh + i * kLineBytes) != nullptr;
        in_l1 += mem.cacheAt(kL1).find(fresh + i * kLineBytes) != nullptr;
    }
    EXPECT_EQ(in_l2, kRegionLineCount);
    EXPECT_EQ(in_l1, 0u);

    // Re-touching the same region does not re-bomb it.
    access(0x400, fresh + 7 * kLineBytes);
    EXPECT_EQ(c1.regionsPrefetched(), before + 1);
}

std::vector<TraceEvent>
eventsOfType(const MemoryTraceSink &sink, TraceEventType type)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &event : sink.events) {
        if (event.type == type)
            out.push_back(event);
    }
    return out;
}

TEST_F(C1Test, DensityExactlySixSixteenthsIsNotDense)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    c1.setTraceContext(&ctx);

    // The paper's rule is *strictly more than* 6 of 16 lines: a
    // region with exactly 6 must not count as dense, so an
    // instruction whose every region has 6 lines is never marked.
    ASSERT_TRUE(c1.considerInstruction(0x500));
    Addr base = 0x1000000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x500, base, 6);
        base += kRegionBytes;
    }
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2000000 + i * kRegionBytes);

    EXPECT_FALSE(c1.isMarked(0x500));
    EXPECT_TRUE(eventsOfType(sink, TraceEventType::kC1RegionDense)
                    .empty());
    const auto verdicts =
        eventsOfType(sink, TraceEventType::kC1Verdict);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].aux, 0x500u);
    EXPECT_EQ(verdicts[0].level, 0u) << "no region may count dense";
    EXPECT_EQ(verdicts[0].arg, 0u) << "verdict must be 'reject'";
}

TEST_F(C1Test, DensitySevenSixteenthsIsDense)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    c1.setTraceContext(&ctx);

    // One line over the threshold flips every region to dense and
    // the verdict to 'mark'.
    ASSERT_TRUE(c1.considerInstruction(0x510));
    Addr base = 0x1100000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x510, base, 7);
        base += kRegionBytes;
    }
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2100000 + i * kRegionBytes);

    EXPECT_TRUE(c1.isMarked(0x510));
    const auto dense =
        eventsOfType(sink, TraceEventType::kC1RegionDense);
    ASSERT_EQ(dense.size(), 4u);
    for (const TraceEvent &event : dense)
        EXPECT_EQ(event.arg, 7u) << "popcount of the line vector";
    const auto verdicts =
        eventsOfType(sink, TraceEventType::kC1Verdict);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].level, 4u);
    EXPECT_EQ(verdicts[0].arg, 1u);
}

TEST_F(C1Test, ProbabilityExactlyThreeQuartersIsNotMarked)
{
    // The rule is *strictly more than* 3/4: 3 dense regions out of 4
    // sits exactly on the boundary and must not mark.
    ASSERT_TRUE(c1.considerInstruction(0x600));
    touchRegion(0x600, 0x1200000, 12);
    touchRegion(0x600, 0x1200000 + kRegionBytes, 12);
    touchRegion(0x600, 0x1200000 + 2 * kRegionBytes, 12);
    touchRegion(0x600, 0x1200000 + 3 * kRegionBytes, 2);
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2200000 + i * kRegionBytes);

    EXPECT_FALSE(c1.isMarked(0x600));
    // The slot is vacated, and 4 dense of 4 on the retry marks: the
    // reject cache must not have latched the boundary case forever.
    ASSERT_TRUE(c1.considerInstruction(0x601));
    Addr base = 0x1300000;
    for (int r = 0; r < 4; ++r) {
        touchRegion(0x601, base, 12);
        base += kRegionBytes;
    }
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2300000 + i * kRegionBytes);
    EXPECT_TRUE(c1.isMarked(0x601));
}

TEST_F(C1Test, RegionWrapAddressingSplitsAtBoundary)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    c1.setTraceContext(&ctx);

    // 6 lines in the region plus the first line of the *next* region:
    // if boundary addresses leaked into the wrong region the vector
    // would reach 7 lines and go dense.
    ASSERT_TRUE(c1.considerInstruction(0x700));
    const Addr base = 0x1400000;
    ASSERT_EQ(base % kRegionBytes, 0u);
    touchRegion(0x700, base, 6);
    access(0x700, base + kRegionBytes); // neighbour, not line 16
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2400000 + i * kRegionBytes);
    EXPECT_TRUE(
        eventsOfType(sink, TraceEventType::kC1RegionDense).empty());
}

TEST_F(C1Test, RegionWrapLastByteMapsToLastLine)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    c1.setTraceContext(&ctx);

    // The region's last byte and its last line's base are the same
    // line: together with 6 low lines that is 7 distinct lines, and
    // the dense event's address must be the region base.
    ASSERT_TRUE(c1.considerInstruction(0x710));
    const Addr base = 0x1500000;
    touchRegion(0x710, base, 6);
    access(0x710, base + kRegionBytes - 1);
    access(0x710, base + (kRegionLineCount - 1) * kLineBytes);
    for (int i = 0; i < 32; ++i)
        access(0x999, 0x2500000 + i * kRegionBytes);

    const auto dense =
        eventsOfType(sink, TraceEventType::kC1RegionDense);
    ASSERT_EQ(dense.size(), 1u);
    EXPECT_EQ(dense[0].arg, 7u)
        << "the two boundary touches are one line";
    EXPECT_EQ(dense[0].addr, base);
    // Line vector: bits 0-5 plus bit 15.
    EXPECT_EQ(dense[0].aux, 0x803fu);
}

TEST_F(C1Test, StorageBudgetNearTableII)
{
    // Table II: C1 = 1.2 KB = 9830 bits.
    const double bits = static_cast<double>(c1.storageBits());
    EXPECT_GT(bits, 0.2 * 1.2 * 8 * 1024);
    EXPECT_LT(bits, 1.5 * 1.2 * 8 * 1024);
}

} // namespace
} // namespace dol
