# Fuzz-campaign regression check, run as a ctest via `cmake -P`.
#
# Replays a 100-case prefix of the nightly differential fuzz campaign
# (seed 1) and requires (a) zero diffs and (b) byte-identical summary
# output between --jobs 1 and --jobs 4. The checked-in baseline for
# the full 1000-case campaign lives in golden/fuzz_campaign_seed1.txt
# and is diffed by the nightly workflow; this prefix keeps the same
# contract cheap enough for `ctest -L tier2` on a laptop.
#
# Usage:
#   cmake -DDOLSIM=<path-to-dolsim> -DWORKDIR=<scratch-dir>
#         -P fuzz_campaign_prefix.cmake

foreach(required DOLSIM WORKDIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "fuzz_campaign_prefix: -D${required}= not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

foreach(jobs 1 4)
    execute_process(
        COMMAND "${DOLSIM}" --fuzz 100 --fuzz-seed 1
                --fuzz-dir "${WORKDIR}/repro-j${jobs}" --jobs ${jobs}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "fuzz_campaign_prefix: campaign found diffs "
                "(--jobs ${jobs}, exit ${rc}):\n${out}")
    endif()
    file(WRITE "${WORKDIR}/summary-j${jobs}.txt" "${out}")
endforeach()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORKDIR}/summary-j1.txt" "${WORKDIR}/summary-j4.txt"
    RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
    message(FATAL_ERROR
            "fuzz_campaign_prefix: summary differs between "
            "--jobs 1 and --jobs 4")
endif()

message(STATUS "fuzz_campaign_prefix: 100 cases clean, deterministic")
