# Adaptive-coordinator sweep smoke, run as a ctest via `cmake -P`.
#
# Drives dolsim with `--coordinator adaptive` over a small grid and
# validates the emitted dol-sweep-v1 document: schema tag, full grid,
# the `adapt.` counter scope on every composite row (windows closed,
# per-slot degree/accuracy state), and byte-identical results between
# --jobs 1 and --jobs 8 (the adaptive policy is integer-only and
# window-driven, so scheduling must not leak into its decisions).
#
# Usage:
#   cmake -DDOLSIM=<path-to-dolsim> -DWORKDIR=<scratch-dir>
#         -P adaptive_sweep.cmake

foreach(required DOLSIM WORKDIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "adaptive_sweep: -D${required}= not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

foreach(jobs 1 8)
    execute_process(
        COMMAND "${DOLSIM}"
            --workload libquantum.syn,tempstream.syn
            --prefetcher TPC,TPC+SPP
            --coordinator adaptive
            --instrs 20000
            --jobs ${jobs}
            --counters
            --json "${WORKDIR}/adaptive_j${jobs}.json"
            --quiet
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "adaptive_sweep: dolsim --jobs ${jobs} failed (${rc})")
    endif()
endforeach()

file(READ "${WORKDIR}/adaptive_j1.json" doc)
file(READ "${WORKDIR}/adaptive_j8.json" doc_j8)

if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON schema GET "${doc}" schema)
    if(NOT schema STREQUAL "dol-sweep-v1")
        message(FATAL_ERROR "adaptive_sweep: schema is '${schema}'")
    endif()
    string(JSON n_results LENGTH "${doc}" results)
    # 2 workloads x 2 prefetchers.
    if(NOT n_results EQUAL 4)
        message(FATAL_ERROR
                "adaptive_sweep: expected 4 results, got ${n_results}")
    endif()
    math(EXPR last "${n_results} - 1")
    foreach(i RANGE ${last})
        string(JSON row GET "${doc}" results ${i})
        # Every row is a composite under the adaptive coordinator, so
        # the adapt scope must ride into the JSON: lifetime window
        # count and claimant state on every row, plus the first
        # extra's degree schedule on the enlarged (TPC+SPP) rows —
        # plain TPC has claimants only, no extra slots.
        set(wanted adapt.windows adapt.acc_T2 adapt.demoted_T2
            adapt.ramps)
        string(JSON prefetcher GET "${row}" prefetcher)
        if(prefetcher MATCHES "\\+")
            list(APPEND wanted adapt.deg_extra0)
        endif()
        foreach(counter IN LISTS wanted)
            string(JSON value ERROR_VARIABLE err
                   GET "${row}" counters "${counter}")
            if(err)
                message(FATAL_ERROR
                        "adaptive_sweep: row ${i} lacks counter "
                        "${counter}")
            endif()
        endforeach()
        # Windows must actually have closed at this budget, otherwise
        # the policy never ran and the sweep proves nothing.
        string(JSON windows GET "${row}" counters adapt.windows)
        if(windows EQUAL 0)
            message(FATAL_ERROR
                    "adaptive_sweep: row ${i} closed zero adaptive "
                    "windows")
        endif()
    endforeach()

    # Scheduling determinism: the results arrays (metrics + counters,
    # adapt. scope included) must be identical across job counts.
    string(JSON results_j1 GET "${doc}" results)
    string(JSON results_j8 GET "${doc_j8}" results)
    if(NOT results_j1 STREQUAL results_j8)
        message(FATAL_ERROR
                "adaptive_sweep: --jobs 1 and --jobs 8 results differ")
    endif()
else()
    foreach(needle "\"schema\": \"dol-sweep-v1\"" "adapt.windows"
            "adapt.deg_extra0" "adapt.acc_T2")
        string(FIND "${doc}" "${needle}" pos)
        if(pos EQUAL -1)
            message(FATAL_ERROR
                    "adaptive_sweep: '${needle}' missing from JSON")
        endif()
    endforeach()
    if(NOT doc STREQUAL doc_j8)
        message(FATAL_ERROR
                "adaptive_sweep: --jobs 1 and --jobs 8 documents "
                "differ")
    endif()
endif()

message(STATUS "adaptive_sweep: dol-sweep-v1 document valid "
               "(4 cells, adapt counters present, jobs-invariant)")
