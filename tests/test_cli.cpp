/**
 * @file
 * Input-hardening tests: the strict CLI parsing helpers behind
 * dolsim's flags (splitCommas, parseUnsigned, per-cell trace paths)
 * and fuzzing of the dol-sweep-v1 JSON reader on truncated and
 * garbage documents — malformed input must produce clean errors,
 * never crashes or silently wrapped values.
 */

#include <climits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/cli.hpp"
#include "runner/json_reader.hpp"

namespace
{

using namespace dol::runner;

TEST(SplitCommas, SplitsAndSkipsEmptyTokens)
{
    EXPECT_EQ(splitCommas("TPC,SPP,BOP"),
              (std::vector<std::string>{"TPC", "SPP", "BOP"}));
    EXPECT_EQ(splitCommas("TPC"), (std::vector<std::string>{"TPC"}));
    EXPECT_EQ(splitCommas("TPC,,SPP"),
              (std::vector<std::string>{"TPC", "SPP"}));
    EXPECT_EQ(splitCommas(",TPC,"), (std::vector<std::string>{"TPC"}));
    EXPECT_TRUE(splitCommas("").empty());
    EXPECT_TRUE(splitCommas(",,,").empty());
}

TEST(ParseUnsigned, AcceptsPlainDecimal)
{
    std::uint64_t out = 0;
    EXPECT_TRUE(parseUnsigned("0", out));
    EXPECT_EQ(out, 0u);
    EXPECT_TRUE(parseUnsigned("200000", out));
    EXPECT_EQ(out, 200000u);
    EXPECT_TRUE(parseUnsigned("18446744073709551615", out));
    EXPECT_EQ(out, UINT64_MAX);
}

TEST(ParseUnsigned, RejectsWhatStrtoulWouldAccept)
{
    std::uint64_t out = 41;
    // strtoul("-1") silently wraps to UINT64_MAX; we must refuse.
    EXPECT_FALSE(parseUnsigned("-1", out));
    EXPECT_FALSE(parseUnsigned("+4", out));
    EXPECT_FALSE(parseUnsigned(" 4", out));
    EXPECT_FALSE(parseUnsigned("4 ", out));
    EXPECT_FALSE(parseUnsigned("0x10", out));
    EXPECT_FALSE(parseUnsigned("1e3", out));
    EXPECT_FALSE(parseUnsigned("", out));
    EXPECT_FALSE(parseUnsigned("12abc", out));
    // One past UINT64_MAX and far past: both overflow cleanly.
    EXPECT_FALSE(parseUnsigned("18446744073709551616", out));
    EXPECT_FALSE(parseUnsigned("99999999999999999999999", out));
    EXPECT_EQ(out, 41u) << "out must be untouched on failure";
}

TEST(ParseUnsignedInRange, EnforcesBothBounds)
{
    std::uint64_t out = 7;
    EXPECT_TRUE(parseUnsignedInRange("4096", 0, 4096, out));
    EXPECT_EQ(out, 4096u);
    EXPECT_FALSE(parseUnsignedInRange("4097", 0, 4096, out));
    EXPECT_FALSE(parseUnsignedInRange("0", 1, UINT64_MAX, out));
    EXPECT_TRUE(parseUnsignedInRange("1", 1, UINT64_MAX, out));
    EXPECT_FALSE(parseUnsignedInRange("-1", 0, 4096, out));
    EXPECT_FALSE(parseUnsignedInRange("", 0, 4096, out));
}

TEST(ParseCoordinatorMode, AcceptsExactlyTheTwoModes)
{
    bool adaptive = true;
    EXPECT_TRUE(parseCoordinatorMode("hardwired", adaptive));
    EXPECT_FALSE(adaptive);
    EXPECT_TRUE(parseCoordinatorMode("adaptive", adaptive));
    EXPECT_TRUE(adaptive);
}

TEST(ParseCoordinatorMode, RejectsUnknownAndEmptyModes)
{
    // A typo must fail loudly, never silently fall back to the
    // hardwired default — and the out-param must stay untouched.
    bool untouched = true;
    EXPECT_FALSE(parseCoordinatorMode("", untouched));
    EXPECT_FALSE(parseCoordinatorMode("Adaptive", untouched));
    EXPECT_FALSE(parseCoordinatorMode("ADAPTIVE", untouched));
    EXPECT_FALSE(parseCoordinatorMode("adaptive ", untouched));
    EXPECT_FALSE(parseCoordinatorMode("auto", untouched));
    EXPECT_FALSE(parseCoordinatorMode("hardwire", untouched));
    EXPECT_TRUE(untouched);
}

TEST(CellTracePath, ComposesPerCellNames)
{
    EXPECT_EQ(cellTracePath("run.trc", "mcf.syn", "TPC", ""),
              "run.trc.mcf.syn.TPC");
    EXPECT_EQ(cellTracePath("run.trc", "mcf.syn", "TPC", ":l2"),
              "run.trc.mcf.syn.TPC:l2");
    // Distinct cells must never share a file (writer exclusivity).
    EXPECT_NE(cellTracePath("t", "a.syn", "TPC", ""),
              cellTracePath("t", "a.syn", "SPP", ""));
}

// --- dol-sweep-v1 JSON reader fuzz --------------------------------

const char kSweepDoc[] = R"({
  "schema": "dol-sweep-v1",
  "generator": "dolsim",
  "config": {"max_instrs": 20000},
  "results": [
    {"workload": "mcf.syn", "prefetcher": "TPC", "variant": "",
     "seed": 123,
     "metrics": {"ipc": 0.51, "speedup": 1.25},
     "counters": {"T2.streams_confirmed": 14,
                  "trace.bytes_fnv64": 17635784611008994966}}
  ],
  "timing": {"jobs": 4, "elapsed_seconds": 0.5, "wall_ms": [1.5]}
})";

TEST(JsonReaderFuzz, ParsesSweepDocument)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(kSweepDoc, doc, &error)) << error;
    EXPECT_EQ(doc.stringOr("schema", ""), "dol-sweep-v1");
    const JsonValue *results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array().size(), 1u);
    const JsonValue *counters = results->array()[0].find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->numberOr("T2.streams_confirmed", 0), 14.0);
}

TEST(JsonReaderFuzz, TruncatedAtEveryPrefixNeverCrashes)
{
    const std::string doc = kSweepDoc;
    for (std::size_t len = 0; len < doc.size(); ++len) {
        JsonValue out;
        std::string error;
        const bool ok = parseJson(doc.substr(0, len), out, &error);
        // Every proper prefix of this document is invalid JSON.
        EXPECT_FALSE(ok) << "prefix length " << len;
        EXPECT_FALSE(error.empty()) << "prefix length " << len;
    }
}

TEST(JsonReaderFuzz, GarbageDocumentsGiveCleanErrors)
{
    const char *garbage[] = {
        "",
        "   ",
        "{",
        "}",
        "[1,2",
        "{\"a\": }",
        "{\"a\": 1,}",
        "{\"a\" 1}",
        "nul",
        "truefalse",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12g4\"",
        "0x10",
        "1e",
        "--4",
        "{\"a\": [{\"b\": {]}}",
        "\x80\xff\xfe garbage bytes",
    };
    for (const char *text : garbage) {
        JsonValue out;
        std::string error;
        EXPECT_FALSE(parseJson(text, out, &error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JsonReaderFuzz, DeepNestingDoesNotOverflowTheStack)
{
    // 100k unclosed arrays: must fail cleanly (depth limit or
    // truncation error), not crash on recursion.
    std::string deep(100000, '[');
    JsonValue out;
    std::string error;
    EXPECT_FALSE(parseJson(deep, out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonReaderFuzz, TrailingGarbageRejected)
{
    JsonValue out;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": 1} tail", out, &error));
    EXPECT_FALSE(parseJson("1 2", out, &error));
}

TEST(JsonReaderFuzz, MissingFileIsCleanError)
{
    JsonValue out;
    std::string error;
    EXPECT_FALSE(
        parseJsonFile("/nonexistent/dol-sweep.json", out, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
