# Enlarged-composite sweep smoke, run as a ctest via `cmake -P`.
#
# Drives dolsim through a small fig14-style sweep — the temporal
# suite crossed with TPC+SPP and the enlarged composite
# TPC+SPP+Triangel+PChase — and validates the emitted dol-sweep-v1
# document: schema tag, full grid (one result per cell), per-cell
# metrics, and the coordinator's multi-extra counters on the
# enlarged-composite rows.
#
# Usage:
#   cmake -DDOLSIM=<path-to-dolsim> -DWORKDIR=<scratch-dir>
#         -P temporal_sweep.cmake

foreach(required DOLSIM WORKDIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "temporal_sweep: -D${required}= not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")
set(json_path "${WORKDIR}/temporal.json")

execute_process(
    COMMAND "${DOLSIM}"
        --suite temporal
        --prefetcher TPC+SPP,TPC+SPP+Triangel+PChase
        --instrs 20000
        --jobs 2
        --counters
        --json "${json_path}"
        --quiet
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "temporal_sweep: dolsim failed (${rc})")
endif()
if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "temporal_sweep: ${json_path} not written")
endif()

file(READ "${json_path}" doc)

if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    # Structural validation via the JSON parser.
    string(JSON schema GET "${doc}" schema)
    if(NOT schema STREQUAL "dol-sweep-v1")
        message(FATAL_ERROR "temporal_sweep: schema is '${schema}'")
    endif()
    string(JSON n_results LENGTH "${doc}" results)
    # 4 temporal workloads x 2 prefetchers.
    if(NOT n_results EQUAL 8)
        message(FATAL_ERROR
                "temporal_sweep: expected 8 results, got ${n_results}")
    endif()
    set(enlarged_rows 0)
    math(EXPR last "${n_results} - 1")
    foreach(i RANGE ${last})
        string(JSON row GET "${doc}" results ${i})
        string(JSON prefetcher GET "${row}" prefetcher)
        foreach(metric speedup eff_coverage_l1 eff_accuracy_l1
                instructions)
            string(JSON value ERROR_VARIABLE err
                   GET "${row}" metrics ${metric})
            if(err)
                message(FATAL_ERROR
                        "temporal_sweep: row ${i} lacks ${metric}")
            endif()
        endforeach()
        if(prefetcher STREQUAL "TPC+SPP+Triangel+PChase")
            math(EXPR enlarged_rows "${enlarged_rows} + 1")
            # Multi-extra instrumentation must ride into the JSON:
            # round-robin bind counts for all three extras.
            foreach(counter TPC.coord_rr_binds TPC.coord_bound_SPP
                    TPC.coord_bound_Triangel TPC.coord_bound_PChase)
                string(JSON value ERROR_VARIABLE err
                       GET "${row}" counters "${counter}")
                if(err)
                    message(FATAL_ERROR
                            "temporal_sweep: enlarged row ${i} lacks "
                            "counter ${counter}")
                endif()
            endforeach()
        endif()
    endforeach()
    if(NOT enlarged_rows EQUAL 4)
        message(FATAL_ERROR
                "temporal_sweep: expected 4 enlarged-composite rows, "
                "got ${enlarged_rows}")
    endif()
else()
    # Pre-3.19 fallback: substring checks only.
    foreach(needle "\"schema\": \"dol-sweep-v1\"" "tempstream.syn"
            "shuflist.syn" "histwalk.syn" "markovmix.syn"
            "TPC+SPP+Triangel+PChase" "coord_bound_Triangel")
        string(FIND "${doc}" "${needle}" pos)
        if(pos EQUAL -1)
            message(FATAL_ERROR
                    "temporal_sweep: '${needle}' missing from JSON")
        endif()
    endforeach()
endif()

message(STATUS "temporal_sweep: dol-sweep-v1 document valid "
               "(8 cells, multi-extra counters present)")
