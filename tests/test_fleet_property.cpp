/**
 * @file
 * Tier-2 fleet property battery: 200-cell synthetic grids, seeded
 * random partitions (1–16 leases), seeded random kill schedules
 * (forked journal writers that _Exit mid-range), all through the real
 * coordinator/ledger/merger. Whatever the schedule, the merged
 * document's deterministic prefix must byte-equal the single-process
 * ResultStore reference and the lease ledger must replay consistent,
 * with every expired lease re-granted exactly once.
 *
 * test_fleet.cpp runs the same harness at 24 cells as a tier-1 smoke;
 * this battery is the long-haul version the nightly workflow runs.
 */

#include <gtest/gtest.h>

#include "fleet_property.hpp"

TEST(FleetProperty, RandomPartitionsAndKillSchedules200Cells)
{
    fleet_property::runFleetPropertyRounds(200, 10, 0xF1EE7ull,
                                           "fleet_prop_200");
}

TEST(FleetProperty, SingleLeaseWholeGridSurvivesKills)
{
    // Degenerate partition: one lease covering all 200 cells, killed
    // up to twice — the generation chain (not parallelism) must carry
    // the sweep to completion.
    std::mt19937_64 rng(0xCAFEull);
    for (unsigned round = 0; round < 3; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const std::string dir = fleet_property::freshDir(
            "fleet_prop_single_r" + std::to_string(round));
        fleet_property::runFleetPropertyRound(200, rng, dir,
                                              /*force_leases=*/1);
        if (testing::Test::HasFatalFailure())
            return;
    }
}
