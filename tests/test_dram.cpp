/**
 * @file
 * Unit tests for the DDR3-style DRAM model: row-buffer behaviour, bus
 * serialization, channel interleaving, and the controller's drop
 * policies (the paper's section V-C.1 mechanism).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/dram.hpp"

namespace dol
{
namespace
{

DramParams
tinyQueueParams(DropPolicy policy = DropPolicy::kRandomPrefetch)
{
    DramParams params;
    params.queueCapacity = 4;
    params.dropPolicy = policy;
    return params;
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    Dram dram;
    // First access opens the row.
    const auto first = dram.access(0x100000, 0, false);
    const Cycle miss_latency = first.completion;
    // Immediately after, the adjacent column in the same row hits —
    // same bank requires stride of channels * banks lines.
    const DramParams &p = dram.params();
    const Addr same_bank_stride =
        static_cast<Addr>(p.channels) * p.ranksPerChannel *
        p.banksPerRank * kLineBytes;
    const auto second =
        dram.access(0x100000 + same_bank_stride, first.completion,
                    false);
    const Cycle hit_latency = second.completion - first.completion;
    EXPECT_LT(hit_latency, miss_latency);
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST(Dram, BusSerializesSameChannel)
{
    Dram dram;
    const DramParams &p = dram.params();
    // Lines 2*k*64 all map to channel 0; issue a burst at time 0.
    Cycle last = 0;
    std::vector<Cycle> completions;
    for (Addr i = 0; i < 8; ++i) {
        const auto res = dram.access(
            i * p.channels * kLineBytes, 0, false);
        completions.push_back(res.completion);
    }
    // Completions must be spaced by at least the burst time.
    std::sort(completions.begin(), completions.end());
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i] - completions[i - 1], p.tBurst);
    (void)last;
}

TEST(Dram, ChannelsServeIndependently)
{
    Dram dram;
    const auto even = dram.access(0, 0, false);
    const auto odd = dram.access(kLineBytes, 0, false);
    // Different channels: neither waits for the other's bus.
    EXPECT_EQ(even.completion, odd.completion);
}

TEST(Dram, WritesCountAsTraffic)
{
    Dram dram;
    dram.access(0, 0, false);
    dram.access(64, 0, true);
    EXPECT_EQ(dram.stats().reads, 1u);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.linesTransferred(), 2u);
}

TEST(Dram, OccupancyTracksLiveRequests)
{
    Dram dram;
    EXPECT_EQ(dram.occupancy(0, 0), 0u);
    const auto res = dram.access(0, 0, false);
    EXPECT_EQ(dram.occupancy(0, 1), 1u);
    EXPECT_EQ(dram.occupancy(0, res.completion + 1), 0u);
}

TEST(Dram, FullQueueDropsPrefetches)
{
    Dram dram(tinyQueueParams());
    unsigned cancelled = 0;
    dram.setCancelHook([&](Addr) { ++cancelled; });

    // Fill the channel-0 queue with prefetches at time 0.
    for (Addr i = 0; i < 16; ++i)
        dram.access(i * 2 * kLineBytes, 0, false, true, 1);
    EXPECT_GT(dram.stats().droppedPrefetches, 0u);
    EXPECT_GT(cancelled, 0u);
}

TEST(Dram, DemandsAreNeverDropped)
{
    Dram dram(tinyQueueParams());
    for (Addr i = 0; i < 16; ++i) {
        const auto res =
            dram.access(i * 2 * kLineBytes, 0, false, false, 0);
        EXPECT_FALSE(res.dropped);
    }
}

TEST(Dram, PriorityPolicyShedsLowPriorityFirst)
{
    Dram dram(tinyQueueParams(DropPolicy::kLowPriorityPrefetch));
    std::multiset<Addr> cancelled;
    dram.setCancelHook([&](Addr line) { cancelled.insert(line); });

    // Queue: three low-priority (C1-like) prefetches, one high.
    dram.access(0 * 2 * kLineBytes, 0, false, true, 1);
    dram.access(1 * 2 * kLineBytes, 0, false, true, 1);
    dram.access(2 * 2 * kLineBytes, 0, false, true, 3);
    dram.access(3 * 2 * kLineBytes, 0, false, true, 3);
    // Queue full: a high-priority prefetch displaces a low one.
    const auto res = dram.access(4 * 2 * kLineBytes, 0, false, true, 3);
    EXPECT_FALSE(res.dropped);
    ASSERT_EQ(cancelled.size(), 1u);
    const Addr victim = *cancelled.begin();
    EXPECT_TRUE(victim == 0 || victim == 2 * kLineBytes)
        << "victim must be a priority-1 request, got " << victim;

    // An incoming low-priority prefetch is shed instead.
    const auto low = dram.access(5 * 2 * kLineBytes, 0, false, true, 1);
    EXPECT_TRUE(low.dropped);
}

TEST(Dram, MonotonicClockPrunesCompletedWork)
{
    Dram dram(tinyQueueParams());
    // Saturate at t=0; far in the future the queue must be empty and
    // accept prefetches again with no drops.
    for (Addr i = 0; i < 4; ++i)
        dram.access(i * 2 * kLineBytes, 0, false, true, 1);
    const auto later =
        dram.access(64 * 2 * kLineBytes, 1000000, false, true, 1);
    EXPECT_FALSE(later.dropped);
}

} // namespace
} // namespace dol
