/**
 * @file
 * Unit tests for the CPU substrate: instruction records, the return
 * address stack, taint propagation, and the dataflow timing core.
 */

#include <gtest/gtest.h>

#include "cpu/core.hpp"
#include "cpu/instr.hpp"
#include "cpu/ras.hpp"
#include "cpu/taint.hpp"

namespace dol
{
namespace
{

/** A memory port with fixed hit latency, for core timing tests. */
class FixedPort : public DataPort
{
  public:
    explicit FixedPort(Cycle latency = 3) : _latency(latency) {}

    Result
    demandLoad(Addr, Pc, Cycle when) override
    {
        ++loads;
        return {when + _latency, true, false, false, false, false, 0};
    }

    Result
    demandStore(Addr, Pc, Cycle when) override
    {
        ++stores;
        return {when + _latency, true, false, false, false, false, 0};
    }

    unsigned loads = 0;
    unsigned stores = 0;

  private:
    Cycle _latency;
};

TEST(Instr, Classification)
{
    EXPECT_TRUE(makeLoad(0x100, 0x2000).isLoad());
    EXPECT_TRUE(makeLoad(0x100, 0x2000).isMem());
    EXPECT_TRUE(makeStore(0x100, 0x2000).isStore());
    EXPECT_FALSE(makeAlu(0x100).isMem());
    EXPECT_TRUE(makeBranch(0x100, 0x80, true).isControl());
    EXPECT_TRUE(makeBranch(0x100, 0x80, true).isBackwardBranch());
    EXPECT_FALSE(makeBranch(0x100, 0x200, true).isBackwardBranch());
    EXPECT_FALSE(makeBranch(0x100, 0x80, false).isBackwardBranch());
    EXPECT_TRUE(makeCall(0x100, 0x4000).isControl());
    EXPECT_TRUE(makeReturn(0x4008, 0x104).isControl());
}

TEST(Ras, PushPopTop)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.top(), 0u);
    ras.push(0x104);
    EXPECT_EQ(ras.top(), 0x104u);
    ras.push(0x208);
    EXPECT_EQ(ras.top(), 0x208u);
    ras.pop();
    EXPECT_EQ(ras.top(), 0x104u);
    ras.pop();
    EXPECT_EQ(ras.top(), 0u);
    ras.pop(); // pop of empty stack is harmless
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, WrapsAtDepth)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites the oldest
    EXPECT_EQ(ras.top(), 3u);
    ras.pop();
    EXPECT_EQ(ras.top(), 2u);
}

TEST(Taint, PropagatesThroughChains)
{
    TaintTracker taint;
    taint.seed(10);
    EXPECT_TRUE(taint.isTainted(10));

    // r11 = f(r10): tainted.
    EXPECT_TRUE(taint.propagate(makeAlu(0, 11, 10)));
    EXPECT_TRUE(taint.isTainted(11));
    // r12 = f(r3): clean, and overwriting r12 clears old taint.
    EXPECT_FALSE(taint.propagate(makeAlu(0, 12, 3)));
    EXPECT_FALSE(taint.isTainted(12));
    // load r13 <- [r11]: address register tainted.
    EXPECT_TRUE(taint.propagate(makeLoad(0, 0x1000, 0, 13, 11)));
    EXPECT_TRUE(taint.isTainted(13));
    // r11 = f(r3): overwrite clears taint.
    EXPECT_FALSE(taint.propagate(makeAlu(0, 11, 3)));
    EXPECT_FALSE(taint.isTainted(11));
}

TEST(Taint, SeedClearsPreviousState)
{
    TaintTracker taint;
    taint.seed(5);
    taint.propagate(makeAlu(0, 6, 5));
    taint.seed(7);
    EXPECT_FALSE(taint.isTainted(5));
    EXPECT_FALSE(taint.isTainted(6));
    EXPECT_TRUE(taint.isTainted(7));
}

TEST(Core, DispatchWidthBoundsIpc)
{
    CoreParams params;
    params.width = 4;
    Core core(params);
    FixedPort port;

    // 4000 independent single-cycle ALU ops: IPC must approach 4.
    for (int i = 0; i < 4000; ++i)
        core.step(makeAlu(0x100 + 4 * i, static_cast<RegId>(i % 32)),
                  port);
    EXPECT_GT(core.stats().ipc(), 3.5);
    EXPECT_LE(core.stats().ipc(), 4.01);
}

TEST(Core, DependentChainSerializes)
{
    Core core;
    FixedPort port;
    // r4 = r4 + 1 chain with latency 2: ~2 cycles per instruction.
    for (int i = 0; i < 1000; ++i)
        core.step(makeAlu(0x100, 4, 4, kNoReg, 2), port);
    EXPECT_NEAR(core.stats().ipc(), 0.5, 0.05);
}

TEST(Core, LoadLatencyGatesConsumers)
{
    Core core;
    FixedPort port(50);
    // load r10; alu r4 = f(r4, r10); repeat — each iteration pays the
    // load-to-use latency because the load feeds the accumulator, but
    // loads themselves are independent and overlap.
    for (int i = 0; i < 200; ++i) {
        core.step(makeLoad(0x100, 0x10000 + 64 * i, 0, 10, 1), port);
        core.step(makeAlu(0x104, 4, 4, 10), port);
    }
    // The r4 chain advances 1/cycle once r10 values stream in, so the
    // bound is the load latency for the first, then pipelined.
    EXPECT_GT(core.stats().ipc(), 1.0);
    EXPECT_EQ(port.loads, 200u);
}

TEST(Core, RobLimitsMemoryLevelParallelism)
{
    CoreParams params;
    params.robSize = 8;
    params.lsqSize = 8;
    Core core(params);
    FixedPort port(100);
    // Independent loads: with an 8-entry ROB only ~8 can overlap, so
    // the rate is bounded by robSize per latency.
    for (int i = 0; i < 400; ++i)
        core.step(makeLoad(0x100, 0x10000 + 64 * i, 0,
                           static_cast<RegId>(10 + i % 4), 1),
                  port);
    const double ipc = core.stats().ipc();
    EXPECT_LT(ipc, 8.0 / 100.0 * 1.4);
    EXPECT_GT(ipc, 8.0 / 100.0 * 0.5);
}

TEST(Core, MispredictAddsPenalty)
{
    CoreParams params;
    Core clean(params), dirty(params);
    FixedPort port;
    for (int i = 0; i < 1000; ++i) {
        clean.step(makeAlu(0x100, 4), port);
        clean.step(makeBranch(0x104, 0x100, true, false), port);
        dirty.step(makeAlu(0x100, 4), port);
        dirty.step(makeBranch(0x104, 0x100, true, true), port);
    }
    EXPECT_GT(clean.stats().ipc(), dirty.stats().ipc() * 2);
    EXPECT_EQ(dirty.stats().mispredicts, 1000u);
}

TEST(Core, RasFollowsCallsAndReturns)
{
    Core core;
    FixedPort port;
    core.step(makeCall(0x100, 0x4000), port);
    EXPECT_EQ(core.ras().top(), 0x104u);
    core.step(makeCall(0x4000, 0x8000), port);
    EXPECT_EQ(core.ras().top(), 0x4004u);
    core.step(makeReturn(0x8004, 0x4004), port);
    EXPECT_EQ(core.ras().top(), 0x104u);
}

TEST(Core, StatsCountInstructionClasses)
{
    Core core;
    FixedPort port;
    core.step(makeLoad(0, 0x1000), port);
    core.step(makeStore(4, 0x2000), port);
    core.step(makeAlu(8), port);
    core.step(makeBranch(12, 0, true), port);
    EXPECT_EQ(core.stats().instructions, 4u);
    EXPECT_EQ(core.stats().loads, 1u);
    EXPECT_EQ(core.stats().stores, 1u);
    EXPECT_EQ(core.stats().branches, 1u);
}

} // namespace
} // namespace dol
