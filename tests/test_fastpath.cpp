/**
 * @file
 * Equivalence tests for the event-driven fast paths and the batched
 * run loop (PR 9). All three optimisations are designed to be exactly
 * result-preserving:
 *
 *  - the MSHR quiescence short-circuit (Cache): every query answered
 *    without scanning once the clock passes the latest registered
 *    completion must match the full scan;
 *  - the DRAM queue-prune short-circuit: clearing a fully-completed
 *    queue in O(1) must leave the same state as filtering it;
 *  - the batched Simulator::run pipeline: identical counters, cycle
 *    counts, and IPC to the legacy one-instruction-at-a-time loop.
 *
 * The micro tests drive randomized op sequences through a fast and a
 * reference instance side by side; the system test runs whole cells
 * (including an idle-heavy one where the short-circuits are hot) both
 * ways and compares the full exported counter registries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/hotpath.hpp"
#include "common/rng.hpp"
#include "core/registry.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "workloads/suite.hpp"

namespace dol
{
namespace
{

/** RAII restore of the process-wide fast-path flag. */
struct FastPathGuard
{
    bool saved = hotpath::fastPath();
    ~FastPathGuard() { hotpath::overrideFastPath(saved); }
};

Cache
makeCache(bool fast_path)
{
    hotpath::overrideFastPath(fast_path);
    Cache::Params params;
    params.name = "fp";
    params.sizeBytes = 4096;
    params.assoc = 4;
    params.mshrs = 8;
    return Cache(params);
}

TEST(FastPath, MshrQueriesMatchReference)
{
    FastPathGuard guard;
    Cache fast = makeCache(true);
    Cache ref = makeCache(false);

    Rng rng(0xFA57001);
    Cycle now = 0;
    for (int op = 0; op < 50000; ++op) {
        const Addr addr = 0x40 * rng.below(32);
        // Advance time in bursts so the file regularly goes quiescent
        // (the case the short-circuit serves) and regularly stays hot.
        now += rng.below(3) == 0 ? rng.below(400) : rng.below(8);
        switch (rng.below(6)) {
        case 0: {
            const Cycle completion = now + rng.below(200);
            const bool is_prefetch = rng.below(2) == 1;
            fast.addMshr(addr, completion, 1, is_prefetch);
            ref.addMshr(addr, completion, 1, is_prefetch);
            break;
        }
        case 1: {
            Cache::MshrEntry *a = fast.pendingEntry(addr, now);
            Cache::MshrEntry *b = ref.pendingEntry(addr, now);
            ASSERT_EQ(a != nullptr, b != nullptr) << "op " << op;
            if (a) {
                EXPECT_EQ(a->completion, b->completion);
                EXPECT_EQ(a->lineAddr, b->lineAddr);
                // Callers mutate the returned entry (merge demand):
                // mirror that so both files keep evolving together.
                a->used = b->used = true;
            }
            break;
        }
        case 2:
            ASSERT_EQ(fast.pendingCompletion(addr, now),
                      ref.pendingCompletion(addr, now))
                << "op " << op;
            break;
        case 3:
            ASSERT_EQ(fast.mshrFull(now), ref.mshrFull(now))
                << "op " << op;
            break;
        case 4:
            ASSERT_EQ(fast.liveMshrCount(now), ref.liveMshrCount(now))
                << "op " << op;
            break;
        default:
            ASSERT_EQ(fast.stealPrefetchMshr(now),
                      ref.stealPrefetchMshr(now))
                << "op " << op;
            break;
        }
    }
}

TEST(FastPath, DramMatchesReference)
{
    FastPathGuard guard;
    DramParams params;
    params.queueCapacity = 8; // small queue: drops and stalls happen
    hotpath::overrideFastPath(true);
    Dram fast(params);
    hotpath::overrideFastPath(false);
    Dram ref(params);

    Rng rng(0xFA57002);
    Cycle now = 0;
    for (int op = 0; op < 50000; ++op) {
        const Addr addr = 0x40 * rng.below(4096);
        now += rng.below(4) == 0 ? rng.below(2000) : rng.below(30);
        if (rng.below(5) == 0) {
            ASSERT_EQ(fast.occupancy(addr, now), ref.occupancy(addr, now))
                << "op " << op;
            continue;
        }
        const bool is_write = rng.below(8) == 0;
        const bool is_prefetch = !is_write && rng.below(2) == 1;
        // Both instances see the identical request stream, and their
        // internal drop-victim RNGs share a seed, so any divergence
        // can only come from the fast-path short-circuits.
        const auto prio = static_cast<std::uint8_t>(rng.below(4));
        const auto a =
            fast.access(addr, now, is_write, is_prefetch, prio);
        const auto b =
            ref.access(addr, now, is_write, is_prefetch, prio);
        ASSERT_EQ(a.completion, b.completion) << "op " << op;
        ASSERT_EQ(a.dropped, b.dropped) << "op " << op;
        ASSERT_EQ(fast.stats().droppedPrefetches,
                  ref.stats().droppedPrefetches)
            << "op " << op;
    }
    EXPECT_EQ(fast.linesTransferred(), ref.linesTransferred());
    EXPECT_EQ(fast.stats().rowHits, ref.stats().rowHits);
    EXPECT_EQ(fast.stats().queueFullDemandStalls,
              ref.stats().queueFullDemandStalls);
}

struct CellRun
{
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::string counters;
};

/**
 * Run one cell end to end. @p reference selects the pre-PR-9
 * configuration: fast paths off at component construction and the
 * legacy per-instruction run loop.
 */
CellRun
runCell(const std::string &workload, const std::string &prefetcher_name,
        bool reference)
{
    hotpath::overrideFastPath(!reference);
    MemoryImage image;
    const WorkloadSpec &spec = findWorkload(workload);
    auto kernel = spec.factory(image);
    auto prefetcher = prefetcher_name == "none"
                          ? nullptr
                          : makePrefetcher(prefetcher_name, &image);

    SimConfig config;
    config.maxInstrs = 60000;
    Simulator sim(config, *kernel, prefetcher.get());
    if (reference)
        sim.setReferenceLoop(true);
    sim.run();

    CellRun out;
    out.instructions = sim.instructions();
    out.ipc = sim.ipc();
    CounterRegistry registry;
    sim.exportCounters(registry);
    out.counters = registry.toText();
    return out;
}

TEST(FastPath, SimulatorEquivalenceAcrossCells)
{
    FastPathGuard guard;
    // libquantum/none is the idle-heavy cell: a streaming kernel with
    // no prefetcher leaves the MSHR file and DRAM queues quiescent
    // between miss bursts, so the short-circuits fire constantly.
    // The composite cell is the busy extreme (chained prefetch fills
    // keep the queues live), and shuflist generates mid-stream, which
    // is exactly what the batched decode must never run ahead of.
    const std::pair<const char *, const char *> cells[] = {
        {"libquantum.syn", "none"},
        {"libquantum.syn", "TPC"},
        {"mcf.syn", "SPP"},
        {"shuflist.syn", "TPC+SPP+Triangel+PChase"},
    };
    for (const auto &[workload, prefetcher] : cells) {
        const CellRun optimised = runCell(workload, prefetcher, false);
        const CellRun ref = runCell(workload, prefetcher, true);
        EXPECT_EQ(optimised.instructions, ref.instructions)
            << workload << "/" << prefetcher;
        EXPECT_EQ(optimised.ipc, ref.ipc)
            << workload << "/" << prefetcher;
        EXPECT_EQ(optimised.counters, ref.counters)
            << workload << "/" << prefetcher;
    }
}

TEST(FastPath, StepBlockMatchesStepSequence)
{
    FastPathGuard guard;
    hotpath::overrideFastPath(true);
    // Same kernel stepped two ways: per-instruction and in blocks of
    // varying size (including sizes that straddle generate() calls).
    MemoryImage image_a, image_b;
    const WorkloadSpec &spec = findWorkload("omnetpp.syn");
    auto kernel_a = spec.factory(image_a);
    auto kernel_b = spec.factory(image_b);
    auto pf_a = makePrefetcher("TPC", &image_a);
    auto pf_b = makePrefetcher("TPC", &image_b);

    SimConfig config;
    config.maxInstrs = 30000;
    Simulator a(config, *kernel_a, pf_a.get());
    Simulator b(config, *kernel_b, pf_b.get());

    Rng rng(0xFA57003);
    while (a.instructions() < config.maxInstrs && a.step()) {
    }
    while (b.instructions() < config.maxInstrs) {
        const std::size_t max = 1 + rng.below(300);
        if (b.stepBlock(static_cast<std::size_t>(std::min<std::uint64_t>(
                max, config.maxInstrs - b.instructions()))) == 0)
            break;
    }

    EXPECT_EQ(a.instructions(), b.instructions());
    EXPECT_EQ(a.ipc(), b.ipc());
    CounterRegistry ra, rb;
    a.exportCounters(ra);
    b.exportCounters(rb);
    EXPECT_EQ(ra.toText(), rb.toText());
}

} // namespace
} // namespace dol
