/**
 * @file
 * Figure 9: memory traffic normalized to the no-prefetch baseline —
 * suite geomean plus the per-application range (paper: TPC +6%%, the
 * best monolithic (BOP) +12%%).
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 9: normalized memory traffic (geomean "
                "and range; paper: TPC 1.06, BOP 1.12) ==\n");
    TextTable table(
        {"prefetcher", "geomean traffic", "min", "max"});
    for (const std::string &pf : figureEightPrefetcherNames()) {
        std::vector<double> traffic;
        RunningStat range;
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            traffic.push_back(std::max(run->trafficNormalized, 1e-6));
            range.add(run->trafficNormalized);
        }
        table.addRow({pf, fmt("%.3f", geomean(traffic)),
                      fmt("%.2f", range.min()),
                      fmt("%.2f", range.max())});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
