/**
 * @file
 * T2 design-choice ablations (DESIGN.md): the mPC call-site
 * disambiguation (paper IV-A.2), the NLPCT, and the strided-confirm
 * threshold, each evaluated on the kernels that exercise them.
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/composite.hpp"
#include "workloads/stream_kernels.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

dol::WorkloadSpec
callStreamSpec()
{
    return {"callstream.abl", "ablation", [](dol::MemoryImage &image) {
                return std::make_unique<dol::CallStreamKernel>(
                    image, dol::CallStreamKernel::Params{
                               .strideA = 64,
                               .strideB = 192,
                               .footprintBytes = 16ull << 20,
                               .seed = 77});
            }};
}

dol::RunOptions
t2Variant(const std::function<void(dol::T2Prefetcher::Params &)> &tune)
{
    dol::RunOptions options;
    options.factory = [tune](const dol::ValueSource *memory) {
        dol::CompositePrefetcher::Config config;
        config.enableP1 = false;
        config.enableC1 = false;
        tune(config.t2);
        return std::make_unique<dol::CompositePrefetcher>(
            memory, config, "T2.variant");
    };
    return options;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== T2 design ablations ==\n");
    TextTable table({"variant", "workload", "speedup", "accuracy",
                     "scope"});
    for (const RunOutput &run : collector().results()) {
        table.addRow({run.prefetcher, run.workload,
                      fmt("%.3f", run.speedup()),
                      fmt("%.2f", run.effAccuracyL1),
                      fmt("%.2f", run.scope)});
    }
    table.print();
    std::printf("(the mPC xor is what lets T2 split the two call-site "
                "streams; without it scope collapses)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    using namespace dol::bench;

    const WorkloadSpec call_stream = callStreamSpec();
    const WorkloadSpec &stencil = findWorkload("lbm.syn");
    const WorkloadSpec &stream = findWorkload("libquantum.syn");

    // mPC xor on/off on the call-site workload.
    registerCell(collector(), call_stream, "T2-mPC",
                 t2Variant([](T2Prefetcher::Params &) {}));
    registerCell(collector(), call_stream, "T2-noXor",
                 t2Variant([](T2Prefetcher::Params &params) {
                     params.useCallSiteXor = false;
                 }));

    // NLPCT size on the stencil (nested-loop) workload.
    registerCell(collector(), stencil, "T2-nlpct20",
                 t2Variant([](T2Prefetcher::Params &) {}));
    registerCell(collector(), stencil, "T2-nlpct1",
                 t2Variant([](T2Prefetcher::Params &params) {
                     params.nlpctEntries = 1;
                 }));

    // Strided-confirm threshold sweep on a clean stream.
    for (unsigned threshold : {4u, 16u, 64u}) {
        registerCell(
            collector(), stream,
            "T2-confirm" + std::to_string(threshold),
            t2Variant([threshold](T2Prefetcher::Params &params) {
                params.strideThreshold = threshold;
            }));
    }

    // Early-issue threshold: disable early prefetching entirely.
    registerCell(collector(), stream, "T2-noEarly",
                 t2Variant([](T2Prefetcher::Params &params) {
                     params.earlyThreshold = 255;
                 }));

    return benchMain(argc, argv, &collector(), printSummary);
}
