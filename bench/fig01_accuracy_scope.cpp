/**
 * @file
 * Figure 1: effective accuracy vs scope for AMPM, BOP, and SMS across
 * the SPEC-like suite, with the suite-wide global average (the
 * motivating tradeoff: scope rises AMPM -> BOP -> SMS while accuracy
 * falls).
 */

#include <cstdio>

#include "bench/harness.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

const char *kPrefetchers[] = {"AMPM", "BOP", "SMS"};

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 1: accuracy vs scope (per application) "
                "==\n");
    TextTable table({"prefetcher", "app", "scope", "eff.accuracy"});
    for (const char *pf : kPrefetchers) {
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            table.addRow({pf, run->workload, fmt("%.2f", run->scope),
                          fmt("%.2f", run->effAccuracyL1)});
        }
    }
    table.print();

    std::printf("\n-- global averages (paper: AMPM 67%%/58%%, BOP "
                "76%%/49%%, SMS 87%%/48%%) --\n");
    TextTable avg({"prefetcher", "avg scope", "avg accuracy"});
    for (const char *pf : kPrefetchers) {
        avg.addRow({pf, fmt("%.2f", collector().weightedScope(pf)),
                    fmt("%.2f", collector().weightedAccuracy(pf))});
    }
    avg.print();
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *pf : kPrefetchers) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
