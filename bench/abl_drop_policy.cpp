/**
 * @file
 * Section V-C.1 drop-policy ablation: in a 4-core system with a
 * congested memory-controller queue, dropping the lowest-confidence
 * prefetches (C1's) instead of random prefetches recovers performance
 * (paper: ~6%% average gain in a multicore environment).
 */

#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "bench/harness.hpp"
#include "metrics/table.hpp"
#include "sim/multicore.hpp"

namespace
{

constexpr unsigned kNumMixes = 5;

struct Row
{
    double randomWs = 0.0;
    double smartWs = 0.0;
};

std::map<unsigned, Row> &
rows()
{
    static std::map<unsigned, Row> instance;
    return instance;
}

dol::SimConfig
stressedConfig(dol::DropPolicy policy)
{
    dol::SimConfig config = dol::makeBenchConfig(35000);
    // A shallow queue makes controller pressure (and thus the drop
    // decision) matter, as in the paper's shared-resource scenario.
    config.mem.dram.queueCapacity = 10;
    config.mem.dram.dropPolicy = policy;
    return config;
}

/** One parallel job per mix; rows() is keyed by mix index, so the
 *  summary is schedule-independent. */
void
registerMix(dol::bench::Collector &collector, unsigned mix_index)
{
    using namespace dol;
    const std::string label = "drop_policy/mix" +
                              std::to_string(mix_index);
    collector.addJob(label, [mix_index](ExperimentRunner &) {
        const auto mixes = makeMixes(kNumMixes, 4242);

        MulticoreSimulator base(
            stressedConfig(DropPolicy::kRandomPrefetch),
            mixes[mix_index], "");
        const MulticoreResult baseline = base.run();

        MulticoreSimulator random_policy(
            stressedConfig(DropPolicy::kRandomPrefetch),
            mixes[mix_index], "TPC");
        MulticoreSimulator smart_policy(
            stressedConfig(DropPolicy::kLowPriorityPrefetch),
            mixes[mix_index], "TPC");

        Row row;
        row.randomWs = random_policy.run().weightedSpeedup(baseline);
        row.smartWs = smart_policy.run().weightedSpeedup(baseline);
        static std::mutex mutex;
        std::lock_guard lock(mutex);
        rows()[mix_index] = row;
        return std::vector<RunOutput>{};
    });
}

void
printSummary()
{
    using namespace dol;
    std::printf("\n== Drop policy ablation (4-core, shallow "
                "controller queue) ==\n");
    TextTable table({"mix", "random-drop WS", "drop-C1-first WS",
                     "gain"});
    double gain_sum = 0.0;
    for (const auto &[mix, row] : rows()) {
        const double gain =
            row.randomWs > 0 ? row.smartWs / row.randomWs : 1.0;
        gain_sum += gain;
        table.addRow({"mix" + std::to_string(mix),
                      fmt("%.3f", row.randomWs),
                      fmt("%.3f", row.smartWs), fmt("%.3f", gain)});
    }
    table.print();
    if (!rows().empty()) {
        std::printf("average gain from priority-aware dropping: "
                    "%.1f%% (paper: ~6%%)\n",
                    100.0 * (gain_sum / rows().size() - 1.0));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    static dol::bench::Collector collector(35000);
    for (unsigned m = 0; m < kNumMixes; ++m)
        registerMix(collector, m);
    return dol::bench::benchMain(argc, argv, &collector,
                                 printSummary);
}
