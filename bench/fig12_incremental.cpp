/**
 * @file
 * Figure 12: effective accuracy and coverage vs scope at the L1 and
 * L2 caches. Monolithic prefetchers are single points; TPC appears
 * incrementally as components are enabled: T2, then +P1, then +C1.
 * A linear fit over the monolithic points reproduces the paper's
 * falling accuracy-vs-scope trend line.
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

const char *kConfigs[] = {"GHB-PC/DC", "FDP",  "VLDP", "SPP", "BOP",
                          "AMPM",      "SMS",  "T2",   "T2P1", "TPC"};

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 12: suite-wide accuracy & coverage vs "
                "scope (L1 and L2) ==\n");
    TextTable table({"config", "scope", "accL1", "covL1", "accL2",
                     "covL2"});
    std::vector<double> mono_scope, mono_acc;
    for (const char *pf : kConfigs) {
        double acc1 = 0, cov1 = 0, acc2 = 0, cov2 = 0, den = 0;
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            const double w = run->baselineMpkiL1;
            acc1 += run->effAccuracyL1 * w;
            cov1 += run->effCoverageL1 * w;
            acc2 += run->effAccuracyL2 * w;
            cov2 += run->effCoverageL2 * w;
            den += w;
        }
        if (den > 0) {
            acc1 /= den; cov1 /= den; acc2 /= den; cov2 /= den;
        }
        const double scope = collector().weightedScope(pf);
        const std::string name = pf;
        if (name != "T2" && name != "T2P1" && name != "TPC") {
            mono_scope.push_back(scope);
            mono_acc.push_back(acc1);
        }
        table.addRow({pf, fmt("%.2f", scope), fmt("%.2f", acc1),
                      fmt("%.2f", cov1), fmt("%.2f", acc2),
                      fmt("%.2f", cov2)});
    }
    table.print();

    const LinearFit fit = linearFit(mono_scope, mono_acc);
    std::printf("\nmonolithic accuracy-vs-scope regression: "
                "accuracy = %.2f + %.2f * scope\n",
                fit.intercept, fit.slope);
    std::printf("(paper: accuracy falls as scope grows; TPC sits "
                "above the line)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *pf : kConfigs) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
