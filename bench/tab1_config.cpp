/**
 * @file
 * Table I: the simulated machine configuration, plus a simulator
 * throughput benchmark (instructions simulated per second).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.hpp"
#include "metrics/table.hpp"
#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace
{

void
BM_SimulatorThroughput(benchmark::State &state)
{
    using namespace dol;
    const WorkloadSpec &spec = findWorkload("libquantum.syn");
    for (auto _ : state) {
        MemoryImage image;
        auto kernel = spec.factory(image);
        SimConfig config;
        config.maxInstrs = 100000;
        Simulator sim(config, *kernel, nullptr);
        sim.run();
        benchmark::DoNotOptimize(sim.ipc());
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(
                                    sim.instructions()));
    }
}

BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void
printTableOne()
{
    using namespace dol;
    const SimConfig config;
    std::printf("\n== Table I: processor configuration ==\n");
    TextTable table({"component", "configuration"});
    char buffer[128];

    std::snprintf(buffer, sizeof buffer,
                  "OoO, %u-wide, 3.0GHz, %u ROB, %u LSQ, "
                  "%u-cycle branch miss penalty",
                  config.core.width, config.core.robSize,
                  config.core.lsqSize, config.core.branchMissPenalty);
    table.addRow({"Core", buffer});

    const auto cache_row = [&](const char *name,
                               const Cache::Params &params) {
        std::snprintf(buffer, sizeof buffer,
                      "%u KB, %u-way, 64B lines, %lu-cycle latency, "
                      "%u MSHRs, LRU",
                      params.sizeBytes / 1024, params.assoc,
                      static_cast<unsigned long>(params.latency),
                      params.mshrs);
        table.addRow({name, buffer});
    };
    cache_row("Private L1D", config.mem.l1);
    cache_row("Private L2", config.mem.l2);
    cache_row("Shared L3 (per core)", config.mem.l3);

    std::snprintf(
        buffer, sizeof buffer,
        "DDR3-1600, %u channels, %u ranks, %u banks, tRCD/tRP/tCAS "
        "%lu/%lu/%lu cycles, burst %lu cycles",
        config.mem.dram.channels, config.mem.dram.ranksPerChannel,
        config.mem.dram.banksPerRank,
        static_cast<unsigned long>(config.mem.dram.tRCD),
        static_cast<unsigned long>(config.mem.dram.tRP),
        static_cast<unsigned long>(config.mem.dram.tCAS),
        static_cast<unsigned long>(config.mem.dram.tBurst));
    table.addRow({"Main memory", buffer});
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    return dol::bench::benchMain(argc, argv, printTableOne);
}
