/**
 * @file
 * Table II: storage cost of every evaluated prefetcher, measured from
 * each implementation's storageBits() against the paper's budgets.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "core/registry.hpp"
#include "metrics/table.hpp"

namespace
{

const std::map<std::string, double> kPaperKilobytes = {
    {"GHB-PC/DC", 4.0}, {"SPP", 5.0},  {"VLDP", 3.25}, {"BOP", 4.0},
    {"FDP", 2.5},       {"SMS", 12.0}, {"AMPM", 4.0},  {"T2", 2.3},
    {"T2P1", 3.37},     {"TPC", 4.57},
};

void
BM_StorageAccounting(benchmark::State &state)
{
    dol::MemoryImage image;
    for (auto _ : state) {
        for (const auto &[name, kb] : kPaperKilobytes) {
            auto pf = dol::makePrefetcher(name, &image);
            benchmark::DoNotOptimize(pf->storageBits());
        }
    }
}

BENCHMARK(BM_StorageAccounting);

void
printTableTwo()
{
    using namespace dol;
    std::printf("\n== Table II: storage cost of evaluated "
                "prefetchers ==\n");
    TextTable table({"prefetcher", "measured KB", "paper KB", "ratio"});
    MemoryImage image;
    for (const auto &[name, paper_kb] : kPaperKilobytes) {
        auto pf = makePrefetcher(name, &image);
        const double kb =
            static_cast<double>(pf->storageBits()) / 8.0 / 1024.0;
        table.addRow({name, fmt("%.2f", kb), fmt("%.2f", paper_kb),
                      fmt("%.2f", kb / paper_kb)});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    return dol::bench::benchMain(argc, argv, printTableTwo);
}
