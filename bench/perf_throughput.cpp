/**
 * @file
 * Simulator-throughput benchmark suite (accesses per wall second).
 *
 * Unlike the figure/table binaries, which measure the *simulated*
 * machine, this one measures the *simulator*: how many demand
 * accesses per second the per-access hot loop (Simulator::access →
 * cache lookup → T2/P1/C1/composite train) sustains on the host.
 * Every cell runs the full production path — kernel generation,
 * timing core, cache hierarchy, prefetcher training, accounting —
 * exactly as a sweep job would.
 *
 * Two measurement modes, both reported:
 *  - single-job: each (workload, prefetcher) cell runs alone, best
 *    of N repetitions (rep noise is the dominant error source);
 *  - multi-job: the whole grid runs once through the SweepRunner at
 *    --jobs N, reporting aggregate instructions per second.
 *
 * Output is a dol-sweep-v1 document (BENCH_throughput.json by
 * default) so the perf trajectory rides the same tooling as every
 * other sweep artifact. Wall-clock numbers are inherently
 * nondeterministic; consumers must treat every metric here the way
 * they treat the "timing" section of a sweep document.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "runner/json_writer.hpp"
#include "runner/sweep.hpp"
#include "sim/experiment.hpp"
#include "sim/multicore.hpp"
#include "sim/simulator.hpp"
#include "workloads/contention.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;

struct CellResult
{
    std::string workload;
    std::string prefetcher;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    double wallSeconds = 0.0;

    double
    accessesPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(accesses) / wallSeconds
                   : 0.0;
    }

    double
    instrsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(instructions) / wallSeconds
                   : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * One timed end-to-end run of a cell; returns wall seconds.
 * The first @p warmup repetitions are discarded: they fault in code
 * pages, warm the branch predictors, and let the allocator reach
 * steady state, so the recorded best-of is not polluted by one cold
 * outlier (noise hygiene, PR 9).
 */
CellResult
runCell(const SimConfig &config, const WorkloadSpec &spec,
        const std::string &prefetcher_name, unsigned reps,
        unsigned warmup)
{
    CellResult result;
    result.workload = spec.name;
    result.prefetcher = prefetcher_name;
    result.wallSeconds = -1.0;

    for (unsigned rep = 0; rep < warmup + reps; ++rep) {
        MemoryImage image;
        auto kernel = spec.factory(image);
        auto prefetcher =
            prefetcher_name == "none"
                ? nullptr
                : makePrefetcher(prefetcher_name, &image);

        Simulator sim(config, *kernel, prefetcher.get());
        const double start = now();
        sim.run();
        const double elapsed = now() - start;
        if (rep < warmup)
            continue;

        const CoreStats &stats = sim.core().stats();
        result.instructions = sim.instructions();
        result.accesses = stats.loads + stats.stores;
        if (result.wallSeconds < 0.0 || elapsed < result.wallSeconds)
            result.wallSeconds = elapsed;
    }
    return result;
}

/**
 * One timed run of a heterogeneous contention mix: the full
 * multicore interleave — shared L3/DRAM, per-core prefetchers,
 * arbitration — measured the same way as a single-core cell.
 * Instruction and access counts are summed over the cores.
 */
CellResult
runMixCell(const SimConfig &config, const ContentionMix &mix,
           unsigned reps, unsigned warmup)
{
    CellResult result;
    result.workload = "mix:" + mix.name;
    result.prefetcher = mixPrefetcherLabel(mix);
    result.wallSeconds = -1.0;

    for (unsigned rep = 0; rep < warmup + reps; ++rep) {
        MulticoreSimulator sim(config, mix.cores);
        const double start = now();
        sim.run();
        const double elapsed = now() - start;
        if (rep < warmup)
            continue;

        result.instructions = 0;
        result.accesses = 0;
        for (std::size_t i = 0; i < sim.numCores(); ++i) {
            const CoreStats &stats = sim.core(i).core().stats();
            result.instructions += sim.core(i).instructions();
            result.accesses += stats.loads + stats.stores;
        }
        if (result.wallSeconds < 0.0 || elapsed < result.wallSeconds)
            result.wallSeconds = elapsed;
    }
    return result;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cells N] [--reps N] [--warmup N] [--instrs N]\n"
        "          [--jobs N] [--json FILE] [--quiet]\n"
        "  --cells N   limit the grid to the first N cells\n"
        "  --reps N    repetitions per cell, best-of (default 3)\n"
        "  --warmup N  discarded warmup reps per cell (default 1)\n"
        "  --instrs N  instruction budget per run (default 400000)\n"
        "  --jobs N    worker count of the multi-job pass (default 4;\n"
        "              0 disables the multi-job pass)\n"
        "  --json FILE output path (default BENCH_throughput.json)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t max_cells = SIZE_MAX;
    unsigned reps = 3;
    unsigned warmup = 1;
    std::uint64_t max_instrs = 400000;
    unsigned jobs = 4;
    std::string json_path = "BENCH_throughput.json";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cells" && i + 1 < argc) {
            max_cells = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--reps" && i + 1 < argc) {
            reps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--warmup" && i + 1 < argc) {
            warmup = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--instrs" && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage(argv[0]);
            return 1;
        }
    }
    if (reps == 0)
        reps = 1;

    // The tab/fig workload cells the acceptance numbers quote: one
    // workload per dominant access pattern (stream, stencil, pointer
    // chase, region-dense, mixed, temporal recurrence, shuffled
    // lists), crossed with the headline prefetcher configs including
    // the enlarged three-extra composite.
    const std::vector<std::string> workloads{
        "libquantum.syn", "lbm.syn",       "mcf.syn",
        "milc.syn",       "omnetpp.syn",   "tempstream.syn",
        "shuflist.syn",
    };
    const std::vector<std::string> prefetchers{
        "none", "TPC", "SPP", "TPC+SPP", "TPC+SPP+Triangel+PChase"};

    SimConfig config = makeBenchConfig(max_instrs);
    config.maxInstrs = max_instrs;

    std::vector<CellResult> cells;
    for (const std::string &workload : workloads) {
        for (const std::string &prefetcher : prefetchers) {
            if (cells.size() >= max_cells)
                break;
            const WorkloadSpec &spec = findWorkload(workload);
            cells.push_back(
                runCell(config, spec, prefetcher, reps, warmup));
            if (!quiet) {
                const CellResult &cell = cells.back();
                std::fprintf(stderr,
                             "%-16s %-8s %9.0f kacc/s  %9.0f kinstr/s\n",
                             cell.workload.c_str(),
                             cell.prefetcher.c_str(),
                             cell.accessesPerSec() / 1e3,
                             cell.instrsPerSec() / 1e3);
            }
        }
    }

    // Contention mix cells: the multicore interleave's throughput,
    // per named mix (heterogeneous per-core prefetchers).
    for (const ContentionMix &mix : contentionMixes()) {
        if (cells.size() >= max_cells)
            break;
        cells.push_back(runMixCell(config, mix, reps, warmup));
        if (!quiet) {
            const CellResult &cell = cells.back();
            std::fprintf(stderr,
                         "%-16s %-8s %9.0f kacc/s  %9.0f kinstr/s\n",
                         cell.workload.c_str(),
                         cell.prefetcher.c_str(),
                         cell.accessesPerSec() / 1e3,
                         cell.instrsPerSec() / 1e3);
        }
    }

    // Multi-job pass: the same grid through the production sweep
    // machinery (baseline runs included, as a real sweep pays them).
    double sweep_wall = 0.0;
    std::uint64_t sweep_instrs = 0;
    if (jobs > 0) {
        runner::SweepRunner sweep(config,
                                  {.jobs = jobs, .progress = false});
        for (const CellResult &cell : cells) {
            // Mix cells run the multicore path, not a sweep cell.
            if (cell.prefetcher == "none" ||
                cell.workload.rfind("mix:", 0) == 0)
                continue;
            sweep.addCell(findWorkload(cell.workload), cell.prefetcher);
        }
        if (sweep.pendingJobs() > 0) {
            const double start = now();
            runner::SweepRunner::Report report = sweep.run();
            sweep_wall = now() - start;
            for (const RunOutput &out : report.outputs)
                sweep_instrs += out.instructions;
            if (!quiet) {
                std::fprintf(stderr,
                             "sweep --jobs %u: %9.0f kinstr/s "
                             "(%zu cells, %.2fs)\n",
                             jobs, sweep_wall > 0.0
                                       ? sweep_instrs / sweep_wall / 1e3
                                       : 0.0,
                             report.outputs.size(), sweep_wall);
            }
        }
    }

    runner::JsonWriter json;
    json.beginObject();
    json.field("schema", "dol-sweep-v1");
    json.field("generator", "perf_throughput");
    json.key("config").beginObject();
    json.field("max_instrs", max_instrs);
    json.field("reps", reps);
    json.field("warmup", warmup);
    json.endObject();

    json.key("results").beginArray();
    for (const CellResult &cell : cells) {
        json.beginObject();
        json.field("workload", cell.workload);
        json.field("prefetcher", cell.prefetcher);
        json.field("variant", "");
        json.field("seed", std::uint64_t{0});
        json.key("metrics").beginObject();
        json.field("instructions", cell.instructions);
        json.field("accesses", cell.accesses);
        json.field("wall_seconds", cell.wallSeconds);
        json.field("accesses_per_sec", cell.accessesPerSec());
        json.field("instrs_per_sec", cell.instrsPerSec());
        json.endObject();
        json.endObject();
    }
    json.endArray();

    json.key("timing").beginObject();
    json.field("jobs", jobs);
    json.field("elapsed_seconds", sweep_wall);
    json.field("sweep_instructions", sweep_instrs);
    json.field("sweep_instrs_per_sec",
               sweep_wall > 0.0 ? sweep_instrs / sweep_wall : 0.0);
    json.endObject();
    json.endObject();

    std::string text = json.take();
    text.push_back('\n');
    if (std::FILE *file = std::fopen(json_path.c_str(), "wb")) {
        std::fwrite(text.data(), 1, text.size(), file);
        std::fclose(file);
    } else {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return 0;
}
