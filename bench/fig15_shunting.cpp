/**
 * @file
 * Figure 15: compositing vs shunting an existing prefetcher with TPC,
 * normalized to TPC alone (paper: compositing gains 3-8%% and never
 * loses; shunting loses 1-6%% on average).
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

const char *kExtras[] = {"VLDP", "SPP", "FDP", "SMS"};

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 15: compositing vs shunting, normalized "
                "to TPC alone ==\n");

    // Per-workload TPC speedups index.
    std::map<std::string, double> tpc_speedup;
    for (const RunOutput *run : collector().byPrefetcher("TPC"))
        tpc_speedup[run->workload] = run->speedup();

    TextTable table({"extra", "compose avg", "compose min",
                     "compose max", "shunt avg", "shunt min",
                     "shunt max"});
    for (const char *extra : kExtras) {
        RunningStat compose, shunt;
        for (const RunOutput *run :
             collector().byPrefetcher(std::string("TPC+") + extra)) {
            compose.add(run->speedup() /
                        tpc_speedup[run->workload]);
        }
        for (const RunOutput *run : collector().byPrefetcher(
                 std::string("SHUNT:TPC+") + extra)) {
            shunt.add(run->speedup() / tpc_speedup[run->workload]);
        }
        table.addRow({extra, fmt("%.3f", compose.mean()),
                      fmt("%.2f", compose.min()),
                      fmt("%.2f", compose.max()),
                      fmt("%.3f", shunt.mean()),
                      fmt("%.2f", shunt.min()),
                      fmt("%.2f", shunt.max())});
    }
    table.print();
    std::printf("(paper: compose 1.03-1.08 and never below 1.0; "
                "shunt 0.94-0.99)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    for (const WorkloadSpec &spec : speclikeSuite())
        bench::registerCell(collector(), spec, "TPC");
    for (const char *extra : kExtras) {
        for (const WorkloadSpec &spec : speclikeSuite()) {
            bench::registerCell(collector(), spec,
                                std::string("TPC+") + extra);
            bench::registerCell(collector(), spec,
                                std::string("SHUNT:TPC+") + extra);
        }
    }
    return bench::benchMain(argc, argv, &collector(), printSummary);
}
