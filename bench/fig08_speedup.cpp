/**
 * @file
 * Figure 8: speedup of every prefetcher over the no-prefetch baseline
 * for all 21 SPEC-like applications, sorted by average gain, plus the
 * suite geomeans (paper: TPC 1.41 vs 1.21-1.33 for monolithics).
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;
    const auto prefetchers = figureEightPrefetcherNames();

    // Sort applications by average gain across prefetchers (the
    // paper's x-axis ordering).
    std::map<std::string, double> avg_gain;
    std::map<std::string, std::map<std::string, double>> cells;
    for (const RunOutput &run : collector().results()) {
        cells[run.workload][run.prefetcher] = run.speedup();
        avg_gain[run.workload] += run.speedup();
    }
    std::vector<std::string> apps;
    for (const auto &[app, gain] : avg_gain)
        apps.push_back(app);
    std::sort(apps.begin(), apps.end(),
              [&](const std::string &a, const std::string &b) {
                  return avg_gain[a] < avg_gain[b];
              });

    std::printf("\n== Figure 8: speedup per application (sorted by "
                "average gain) ==\n");
    std::vector<std::string> headers{"app"};
    for (const auto &pf : prefetchers)
        headers.push_back(pf);
    TextTable table(headers);
    for (const std::string &app : apps) {
        std::vector<std::string> row{app};
        for (const auto &pf : prefetchers)
            row.push_back(fmt("%.2f", cells[app][pf]));
        table.addRow(row);
    }
    table.print();

    std::printf("\n-- suite geomean (paper: TPC 1.41, monolithics "
                "1.21-1.33) --\n");
    TextTable geo({"prefetcher", "geomean speedup", "best-in-N apps"});
    for (const auto &pf : prefetchers) {
        unsigned best = 0;
        for (const std::string &app : apps) {
            bool is_best = true;
            for (const auto &other : prefetchers)
                is_best &= cells[app][pf] >= cells[app][other] - 1e-9;
            best += is_best;
        }
        geo.addRow({pf, fmt("%.3f", collector().geomeanSpeedup(pf)),
                    fmt("%.0f", static_cast<double>(best))});
    }
    geo.print();
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
