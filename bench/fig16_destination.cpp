/**
 * @file
 * Figure 16: the effect of prefetch destination. For each prefetcher,
 * three policies: everything into L2, everything into L1, and the
 * stratified policy (LHF to L1, the rest to L2 — an oracle for
 * monolithics, TPC's natural component-based behaviour).
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 16: prefetch destination policy "
                "(suite average speedup and range) ==\n");
    TextTable table({"prefetcher", "to L2", "to L1", "stratified",
                     "range L1 (min..max)"});
    for (const std::string &pf : figureEightPrefetcherNames()) {
        RunningStat l2, l1, strat;
        // Results were recorded in registration order: L2, L1,
        // stratified for each workload.
        const auto runs = collector().byPrefetcher(pf);
        for (std::size_t i = 0; i + 2 < runs.size(); i += 3) {
            l2.add(runs[i]->speedup());
            l1.add(runs[i + 1]->speedup());
            strat.add(runs[i + 2]->speedup());
        }
        table.addRow({pf, fmt("%.3f", l2.mean()),
                      fmt("%.3f", l1.mean()),
                      fmt("%.3f", strat.mean()),
                      fmt("%.2f", l1.min()) + ".." +
                          fmt("%.2f", l1.max())});
    }
    table.print();
    std::printf("(paper: L1 beats L2 on average; stratified "
                "destinations match or beat both — TPC gets this "
                "without an oracle)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    for (const std::string &pf : figureEightPrefetcherNames()) {
        for (const WorkloadSpec &spec : speclikeSuite()) {
            RunOptions to_l2;
            to_l2.forceDest = kL2;
            bench::registerCell(collector(), spec, pf, to_l2, ":L2");

            RunOptions to_l1;
            // TPC's natural policy is already component-stratified;
            // forcing L1 moves C1's region prefetches up as well.
            to_l1.forceDest = kL1;
            bench::registerCell(collector(), spec, pf, to_l1, ":L1");

            RunOptions stratified;
            stratified.oracleDest = pf != "TPC";
            bench::registerCell(collector(), spec, pf, stratified,
                                ":strat");
        }
    }
    return bench::benchMain(argc, argv, &collector(), printSummary);
}
