/**
 * @file
 * Figure 11: speedup by benchmark suite — the SPEC-like, CRONO-like,
 * STARBENCH-like and NPB-like single-core suites plus 4-core
 * multiprogrammed mixes — and the all-workload geomean (paper: TPC
 * 1.39 vs 1.22-1.31 over 68 workloads).
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

#include "bench/harness.hpp"
#include "core/registry.hpp"
#include "sim/contention.hpp"
#include "sim/multicore.hpp"
#include "workloads/contention.hpp"

namespace
{

constexpr unsigned kNumMixes = 6;

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

struct MixRecord
{
    std::string prefetcher;
    unsigned mix;
    double weightedSpeedup;
};

std::vector<MixRecord> &
mixRecords()
{
    static std::vector<MixRecord> records;
    return records;
}

/** Baseline mix runs, computed once and shared across worker jobs. */
dol::MulticoreResult
mixBaseline(unsigned mix_index)
{
    using namespace dol;
    static std::mutex mutex;
    static std::map<unsigned, MulticoreResult> cache;
    std::lock_guard lock(mutex);
    auto it = cache.find(mix_index);
    if (it == cache.end()) {
        SimConfig config = makeBenchConfig(40000);
        const auto mixes = makeMixes(kNumMixes, 2018);
        MulticoreSimulator sim(config, mixes[mix_index], "");
        it = cache.emplace(mix_index, sim.run()).first;
    }
    return it->second;
}

/**
 * One parallel job per (prefetcher, mix); the record lands in a
 * pre-assigned slot so output order is schedule-independent.
 */
void
registerMix(unsigned mix_index, const std::string &prefetcher,
            std::size_t slot)
{
    using namespace dol;
    const std::string label =
        prefetcher + "/mix" + std::to_string(mix_index);
    mixRecords().resize(
        std::max(mixRecords().size(), slot + 1));
    collector().addJob(
        label, [mix_index, prefetcher, slot](ExperimentRunner &) {
            SimConfig config = makeBenchConfig(40000);
            const auto mixes = makeMixes(kNumMixes, 2018);
            MulticoreSimulator sim(config, mixes[mix_index],
                                   prefetcher);
            const MulticoreResult result = sim.run();
            mixRecords()[slot] = {
                prefetcher, mix_index,
                result.weightedSpeedup(mixBaseline(mix_index))};
            return std::vector<RunOutput>{};
        });
}

struct ContentionRecord
{
    std::string mix;
    std::string prefetchers;
    dol::FairnessMetrics fairness;
};

std::vector<ContentionRecord> &
contentionRecords()
{
    static std::vector<ContentionRecord> records;
    return records;
}

/**
 * One parallel job per named contention mix: heterogeneous per-core
 * prefetchers against per-core solo baselines, summarized by the
 * fairness metrics (not the homogeneous weighted-speedup column
 * above, which compares prefetchers on the same mix).
 */
void
registerContentionMix(const dol::ContentionMix &mix, std::size_t slot)
{
    using namespace dol;
    contentionRecords().resize(
        std::max(contentionRecords().size(), slot + 1));
    collector().addJob(
        "contention/" + mix.name, [&mix, slot](ExperimentRunner &) {
            SimConfig config = makeBenchConfig(40000);
            const ContentionOutcome outcome =
                runContentionScenario(config, mix);
            contentionRecords()[slot] = {mix.name,
                                         mixPrefetcherLabel(mix),
                                         outcome.fairness};
            return std::vector<RunOutput>{};
        });
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;
    const auto prefetchers = figureEightPrefetcherNames();

    std::printf("\n== Figure 11: geomean speedup by suite ==\n");
    TextTable table({"prefetcher", "spec", "crono", "starbench",
                     "npb", "4-core mixes", "all"});
    for (const auto &pf : prefetchers) {
        std::map<std::string, std::vector<double>> by_suite;
        std::vector<double> all;
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            const std::string &suite =
                findWorkload(run->workload).suite;
            by_suite[suite].push_back(std::max(run->speedup(), 1e-6));
            all.push_back(std::max(run->speedup(), 1e-6));
        }
        std::vector<double> mixes;
        for (const MixRecord &record : mixRecords()) {
            if (record.prefetcher == pf) {
                mixes.push_back(std::max(record.weightedSpeedup, 1e-6));
                all.push_back(std::max(record.weightedSpeedup, 1e-6));
            }
        }
        table.addRow({pf, fmt("%.3f", geomean(by_suite["spec"])),
                      fmt("%.3f", geomean(by_suite["crono"])),
                      fmt("%.3f", geomean(by_suite["starbench"])),
                      fmt("%.3f", geomean(by_suite["npb"])),
                      fmt("%.3f", geomean(mixes)),
                      fmt("%.3f", geomean(all))});
    }
    table.print();
    std::printf("(paper: TPC 1.39 vs 1.22-1.31 across 68 "
                "workloads)\n");

    std::printf("\n== Heterogeneous contention mixes ==\n");
    TextTable mix_table({"mix", "per-core prefetchers", "wspeedup",
                         "hspeedup", "unfairness", "max slowdown"});
    for (const ContentionRecord &record : contentionRecords()) {
        double max_slowdown = 0.0;
        for (double s : record.fairness.slowdown)
            max_slowdown = std::max(max_slowdown, s);
        mix_table.addRow(
            {record.mix, record.prefetchers,
             fmt("%.3f", record.fairness.weightedSpeedup),
             fmt("%.3f", record.fairness.harmonicSpeedup),
             fmt("%.3f", record.fairness.unfairness),
             fmt("%.3f", max_slowdown)});
    }
    mix_table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t slot = 0;
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::allWorkloads())
            dol::bench::registerCell(collector(), spec, pf);
        for (unsigned m = 0; m < kNumMixes; ++m)
            registerMix(m, pf, slot++);
    }
    std::size_t contention_slot = 0;
    for (const dol::ContentionMix &mix : dol::contentionMixes())
        registerContentionMix(mix, contention_slot++);
    return dol::bench::benchMain(argc, argv, &collector(),
                                 printSummary);
}
