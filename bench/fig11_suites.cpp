/**
 * @file
 * Figure 11: speedup by benchmark suite — the SPEC-like, CRONO-like,
 * STARBENCH-like and NPB-like single-core suites plus 4-core
 * multiprogrammed mixes — and the all-workload geomean (paper: TPC
 * 1.39 vs 1.22-1.31 over 68 workloads).
 */

#include <cstdio>
#include <map>
#include <mutex>

#include "bench/harness.hpp"
#include "core/registry.hpp"
#include "sim/multicore.hpp"

namespace
{

constexpr unsigned kNumMixes = 6;

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

struct MixRecord
{
    std::string prefetcher;
    unsigned mix;
    double weightedSpeedup;
};

std::vector<MixRecord> &
mixRecords()
{
    static std::vector<MixRecord> records;
    return records;
}

/** Baseline mix runs, computed once and shared across worker jobs. */
dol::MulticoreResult
mixBaseline(unsigned mix_index)
{
    using namespace dol;
    static std::mutex mutex;
    static std::map<unsigned, MulticoreResult> cache;
    std::lock_guard lock(mutex);
    auto it = cache.find(mix_index);
    if (it == cache.end()) {
        SimConfig config = makeBenchConfig(40000);
        const auto mixes = makeMixes(kNumMixes, 2018);
        MulticoreSimulator sim(config, mixes[mix_index], "");
        it = cache.emplace(mix_index, sim.run()).first;
    }
    return it->second;
}

/**
 * One parallel job per (prefetcher, mix); the record lands in a
 * pre-assigned slot so output order is schedule-independent.
 */
void
registerMix(unsigned mix_index, const std::string &prefetcher,
            std::size_t slot)
{
    using namespace dol;
    const std::string label =
        prefetcher + "/mix" + std::to_string(mix_index);
    mixRecords().resize(
        std::max(mixRecords().size(), slot + 1));
    collector().addJob(
        label, [mix_index, prefetcher, slot](ExperimentRunner &) {
            SimConfig config = makeBenchConfig(40000);
            const auto mixes = makeMixes(kNumMixes, 2018);
            MulticoreSimulator sim(config, mixes[mix_index],
                                   prefetcher);
            const MulticoreResult result = sim.run();
            mixRecords()[slot] = {
                prefetcher, mix_index,
                result.weightedSpeedup(mixBaseline(mix_index))};
            return std::vector<RunOutput>{};
        });
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;
    const auto prefetchers = figureEightPrefetcherNames();

    std::printf("\n== Figure 11: geomean speedup by suite ==\n");
    TextTable table({"prefetcher", "spec", "crono", "starbench",
                     "npb", "4-core mixes", "all"});
    for (const auto &pf : prefetchers) {
        std::map<std::string, std::vector<double>> by_suite;
        std::vector<double> all;
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            const std::string &suite =
                findWorkload(run->workload).suite;
            by_suite[suite].push_back(std::max(run->speedup(), 1e-6));
            all.push_back(std::max(run->speedup(), 1e-6));
        }
        std::vector<double> mixes;
        for (const MixRecord &record : mixRecords()) {
            if (record.prefetcher == pf) {
                mixes.push_back(std::max(record.weightedSpeedup, 1e-6));
                all.push_back(std::max(record.weightedSpeedup, 1e-6));
            }
        }
        table.addRow({pf, fmt("%.3f", geomean(by_suite["spec"])),
                      fmt("%.3f", geomean(by_suite["crono"])),
                      fmt("%.3f", geomean(by_suite["starbench"])),
                      fmt("%.3f", geomean(by_suite["npb"])),
                      fmt("%.3f", geomean(mixes)),
                      fmt("%.3f", geomean(all))});
    }
    table.print();
    std::printf("(paper: TPC 1.39 vs 1.22-1.31 across 68 "
                "workloads)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t slot = 0;
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::allWorkloads())
            dol::bench::registerCell(collector(), spec, pf);
        for (unsigned m = 0; m < kNumMixes; ++m)
            registerMix(m, pf, slot++);
    }
    return dol::bench::benchMain(argc, argv, &collector(),
                                 printSummary);
}
