/**
 * @file
 * Figure 10: effective accuracy (L1) vs scope for every prefetcher,
 * one dot per application weighted by prefetches issued, plus each
 * prefetcher's weighted suite average (paper: monolithic averages
 * 45-69%%, TPC 82%% with worst-case 49%%).
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 10: effective accuracy vs scope (per "
                "app; weight = prefetches issued) ==\n");
    TextTable table({"prefetcher", "app", "scope", "accuracy",
                     "issued"});
    for (const std::string &pf : figureEightPrefetcherNames()) {
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            table.addRow(
                {pf, run->workload, fmt("%.2f", run->scope),
                 fmt("%.2f", run->effAccuracyL1),
                 fmt("%.0f",
                     static_cast<double>(run->prefetchesIssued))});
        }
    }
    table.print();

    std::printf("\n-- weighted suite averages (paper: monolithics "
                "45-69%%, TPC 82%%) --\n");
    TextTable avg({"prefetcher", "avg scope", "avg accuracy",
                   "worst-app accuracy"});
    for (const std::string &pf : figureEightPrefetcherNames()) {
        RunningStat worst;
        for (const RunOutput *run : collector().byPrefetcher(pf)) {
            if (run->prefetchesIssued > 100)
                worst.add(run->effAccuracyL1);
        }
        avg.addRow({pf, fmt("%.2f", collector().weightedScope(pf)),
                    fmt("%.2f", collector().weightedAccuracy(pf)),
                    fmt("%.2f", worst.min())});
    }
    avg.print();
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
