/**
 * @file
 * Figure 13: effective accuracy and scope stratified by the offline
 * LHF / MHF / HHF ground-truth categories, per prefetcher (paper:
 * most prefetches are LHF where T2 excels; C1 beats monolithics in
 * MHF at 61%%; P1 reaches 86%% accuracy in HHF while monolithics
 * average at best 38%% and sometimes go negative).
 */

#include <cstdio>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(200000);
    return instance;
}

void
printSummary()
{
    using namespace dol;
    using namespace dol::bench;

    std::printf("\n== Figure 13: per-category accuracy and scope "
                "==\n");
    TextTable table({"prefetcher", "category", "issued", "accuracy",
                     "scope"});
    for (const std::string &pf : figureEightPrefetcherNames()) {
        for (unsigned f = 0; f < kNumFruit; ++f) {
            std::uint64_t issued = 0;
            double used = 0, induced = 0, scope_num = 0,
                   scope_den = 0;
            for (const RunOutput *run : collector().byPrefetcher(pf)) {
                issued += run->categories[f].issued;
                used += static_cast<double>(run->categories[f].used);
                induced += run->categories[f].inducedCredit;
                scope_num += run->categoryScope[f] *
                             run->baselineMpkiL1;
                scope_den += run->baselineMpkiL1;
            }
            const double accuracy =
                issued ? (used - induced) /
                             static_cast<double>(issued)
                       : 0.0;
            table.addRow(
                {pf, fruitName(static_cast<Fruit>(f)),
                 fmt("%.0f", static_cast<double>(issued)),
                 fmt("%.2f", accuracy),
                 fmt("%.2f",
                     scope_den ? scope_num / scope_den : 0.0)});
        }
    }
    table.print();
    std::printf("(paper: LHF dominates volume; C1's MHF accuracy "
                "61%% beats monolithics' 32-56%%; P1's HHF accuracy "
                "86%% vs at best 38%%)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    for (const std::string &pf : dol::figureEightPrefetcherNames()) {
        for (const dol::WorkloadSpec &spec : dol::speclikeSuite())
            dol::bench::registerCell(collector(), spec, pf);
    }
    return dol::bench::benchMain(argc, argv, &collector(), printSummary);
}
