/**
 * @file
 * Shared scaffolding for the experiment benchmarks.
 *
 * Every bench binary queues its (workload, prefetcher) cells — or
 * custom jobs for dependent/multicore flows — on a Collector, then
 * calls benchMain(), which runs the whole grid in parallel on the
 * runner subsystem (SweepRunner): deterministic per-cell seeding, a
 * shared baseline cache, per-job wall time and a live progress line.
 * Results land in registration order regardless of worker count, so
 * the paper-style summary tables are bit-identical for any --jobs N.
 * Binaries that also register native google-benchmark timings (the
 * throughput/storage tables) still get them run by benchMain().
 *
 * Common flags: --jobs N (default: hardware threads, or DOL_JOBS),
 * --json FILE (dol-sweep-v1 structured results), --quiet.
 */

#ifndef DOL_BENCH_HARNESS_HPP
#define DOL_BENCH_HARNESS_HPP

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "metrics/table.hpp"
#include "runner/sweep.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace dol::bench
{

/** Queued sweep + result store for one bench binary. */
class Collector
{
  public:
    explicit Collector(std::uint64_t max_instrs = 200000)
        : _config(makeBenchConfig(max_instrs)), _sweep(_config)
    {}

    const SimConfig &config() const { return _config; }

    /** Queue one plain (workload, prefetcher) cell. */
    void
    addCell(const WorkloadSpec &spec, const std::string &prefetcher,
            RunOptions options = {},
            const std::string &label_suffix = "")
    {
        _sweep.addCell(spec, prefetcher, std::move(options),
                       label_suffix);
    }

    /**
     * Queue a custom job (multicore mixes, dependent run chains).
     * The body runs on a worker with a job-private ExperimentRunner
     * sharing this binary's baseline cache; returned outputs are
     * recorded in registration order.
     */
    void
    addJob(const std::string &label, runner::JobBody body)
    {
        _sweep.addJob(label, std::move(body));
    }

    /** Execute every queued job; fills results(). */
    void
    runAll(runner::SweepOptions options)
    {
        _sweep.setOptions(options);
        runner::SweepRunner::Report report = _sweep.run();
        _outputs = std::move(report.outputs);
        _store = std::move(report.store);
        _meta = std::move(report.meta);
        _meta.generator = "bench";
    }

    const std::vector<RunOutput> &results() const { return _outputs; }
    const runner::ResultStore &store() const { return _store; }
    const runner::SweepMeta &meta() const { return _meta; }

    /** All results of one prefetcher, in registration order. */
    std::vector<const RunOutput *>
    byPrefetcher(const std::string &name) const
    {
        std::vector<const RunOutput *> out;
        for (const RunOutput &result : _outputs) {
            if (result.prefetcher == name)
                out.push_back(&result);
        }
        return out;
    }

    double
    geomeanSpeedup(const std::string &name) const
    {
        std::vector<double> speedups;
        for (const RunOutput *run : byPrefetcher(name))
            speedups.push_back(std::max(run->speedup(), 1e-6));
        return geomean(speedups);
    }

    /** Suite-wide average weighted by prefetches issued (Fig. 10). */
    double
    weightedAccuracy(const std::string &name) const
    {
        double num = 0.0, den = 0.0;
        for (const RunOutput *run : byPrefetcher(name)) {
            num += run->effAccuracyL1 *
                   static_cast<double>(run->prefetchesIssued);
            den += static_cast<double>(run->prefetchesIssued);
        }
        return den > 0 ? num / den : 0.0;
    }

    /** Suite-wide scope weighted by baseline MPKI (Fig. 10/12). */
    double
    weightedScope(const std::string &name) const
    {
        double num = 0.0, den = 0.0;
        for (const RunOutput *run : byPrefetcher(name)) {
            num += run->scope * run->baselineMpkiL1;
            den += run->baselineMpkiL1;
        }
        return den > 0 ? num / den : 0.0;
    }

  private:
    SimConfig _config;
    runner::SweepRunner _sweep;
    std::vector<RunOutput> _outputs;
    runner::ResultStore _store;
    runner::SweepMeta _meta;
};

/** Queue one (workload, prefetcher) cell of the figure's grid. */
inline void
registerCell(Collector &collector, const WorkloadSpec &spec,
             const std::string &prefetcher, RunOptions options = {},
             const std::string &label_suffix = "")
{
    collector.addCell(spec, prefetcher, std::move(options),
                      label_suffix);
}

/**
 * Standard bench main: run the queued sweep in parallel, run any
 * native google-benchmark registrations, then print the summary
 * table. @p collector may be null for binaries with no sweep.
 */
inline int
benchMain(int argc, char **argv, Collector *collector,
          const std::function<void()> &summary)
{
    runner::SweepOptions sweep_options;
    std::string json_path;

    if (const char *env = std::getenv("DOL_JOBS")) {
        sweep_options.jobs = static_cast<unsigned>(
            std::strtoul(env, nullptr, 10));
    }

    // Strip runner flags before handing the rest to google-benchmark.
    std::vector<char *> remaining{argv, argv + 1};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            sweep_options.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--quiet") {
            sweep_options.progress = false;
        } else {
            remaining.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(remaining.size());

    benchmark::Initialize(&bench_argc, remaining.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               remaining.data()))
        return 1;

    if (collector)
        collector->runAll(sweep_options);

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (collector && !json_path.empty()) {
        if (!collector->store().writeJsonFile(json_path,
                                              collector->meta()))
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
    }

    summary();
    return 0;
}

/** Overload for binaries with no sweep (native benchmarks only). */
inline int
benchMain(int argc, char **argv, const std::function<void()> &summary)
{
    return benchMain(argc, argv, nullptr, summary);
}

} // namespace dol::bench

#endif // DOL_BENCH_HARNESS_HPP
