/**
 * @file
 * Shared scaffolding for the experiment benchmarks.
 *
 * Every bench binary is a google-benchmark executable: each
 * (workload, prefetcher) cell of the paper's figure is registered as
 * one benchmark iteration whose runtime is the simulation itself, with
 * headline metrics attached as counters. After the benchmark pass, the
 * binary prints the paper-style summary table for EXPERIMENTS.md.
 */

#ifndef DOL_BENCH_HARNESS_HPP
#define DOL_BENCH_HARNESS_HPP

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "metrics/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace dol::bench
{

/** Shared runner + result store for one bench binary. */
class Collector
{
  public:
    explicit Collector(std::uint64_t max_instrs = 200000)
        : _runner(makeBenchConfig(max_instrs))
    {}

    ExperimentRunner &runner() { return _runner; }

    RunOutput &
    record(RunOutput out)
    {
        _results.push_back(std::move(out));
        return _results.back();
    }

    const std::vector<RunOutput> &results() const { return _results; }

    /** All results of one prefetcher, in run order. */
    std::vector<const RunOutput *>
    byPrefetcher(const std::string &name) const
    {
        std::vector<const RunOutput *> out;
        for (const RunOutput &result : _results) {
            if (result.prefetcher == name)
                out.push_back(&result);
        }
        return out;
    }

    double
    geomeanSpeedup(const std::string &name) const
    {
        std::vector<double> speedups;
        for (const RunOutput *run : byPrefetcher(name))
            speedups.push_back(std::max(run->speedup(), 1e-6));
        return geomean(speedups);
    }

    /** Suite-wide average weighted by prefetches issued (Fig. 10). */
    double
    weightedAccuracy(const std::string &name) const
    {
        double num = 0.0, den = 0.0;
        for (const RunOutput *run : byPrefetcher(name)) {
            num += run->effAccuracyL1 *
                   static_cast<double>(run->prefetchesIssued);
            den += static_cast<double>(run->prefetchesIssued);
        }
        return den > 0 ? num / den : 0.0;
    }

    /** Suite-wide scope weighted by baseline MPKI (Fig. 10/12). */
    double
    weightedScope(const std::string &name) const
    {
        double num = 0.0, den = 0.0;
        for (const RunOutput *run : byPrefetcher(name)) {
            num += run->scope * run->baselineMpkiL1;
            den += run->baselineMpkiL1;
        }
        return den > 0 ? num / den : 0.0;
    }

  private:
    ExperimentRunner _runner;
    std::vector<RunOutput> _results;
};

/**
 * Register one (workload, prefetcher) cell. The simulation runs once
 * inside the benchmark loop; counters expose the headline metrics.
 */
inline void
registerCell(Collector &collector, const WorkloadSpec &spec,
             const std::string &prefetcher, RunOptions options = {},
             const std::string &label_suffix = "")
{
    const std::string label =
        prefetcher + "/" + spec.name + label_suffix;
    benchmark::RegisterBenchmark(
        label.c_str(),
        [&collector, spec, prefetcher,
         options = std::move(options)](benchmark::State &state) {
            RunOutput out;
            for (auto _ : state)
                out = collector.runner().run(spec, prefetcher, options);
            state.counters["speedup"] = out.speedup();
            state.counters["acc_L1"] = out.effAccuracyL1;
            state.counters["scope"] = out.scope;
            state.counters["traffic"] = out.trafficNormalized;
            collector.record(std::move(out));
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** Standard bench main: run benchmarks, then print the table. */
inline int
benchMain(int argc, char **argv, const std::function<void()> &summary)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    summary();
    return 0;
}

} // namespace dol::bench

#endif // DOL_BENCH_HARNESS_HPP
