/**
 * @file
 * Figure 14: existing prefetchers working alone vs as a component
 * beside TPC, measured inside the region TPC does not cover (the
 * exclude set is TPC's own prefetching footprint). The paper's
 * finding: as a coordinated component, each design's accuracy in that
 * region improves (e.g. SMS 27%% -> 43%%).
 *
 * Each (design, workload) is one parallel job running the dependent
 * chain TPC -> alone -> composed; the suite-weighted aggregation
 * happens after the sweep, in registration order.
 */

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "core/registry.hpp"

namespace
{

const char *kExtras[] = {"VLDP", "SPP", "FDP", "SMS"};

struct FocusResult
{
    double accuracy = 0.0;
    double scope = 0.0;
    std::uint64_t issued = 0;
};

struct Cell
{
    FocusResult alone;
    FocusResult composed;
};

dol::bench::Collector &
collector()
{
    static dol::bench::Collector instance(150000);
    return instance;
}

void
registerExtra(const std::string &extra)
{
    using namespace dol;
    for (const WorkloadSpec &spec : speclikeSuite()) {
        const std::string label =
            "fig14/" + extra + "/" + spec.name;
        collector().addJob(
            label, [extra, spec](ExperimentRunner &runner) {
                // TPC's footprint defines the uncovered region.
                const RunOutput tpc = runner.run(spec, "TPC");

                RunOptions focus;
                focus.exclude = tpc.pfp;
                std::vector<RunOutput> out;
                out.push_back(runner.run(spec, extra, focus));
                out.push_back(
                    runner.run(spec, "TPC+" + extra, focus));
                return out;
            });
    }
}

void
printSummary()
{
    using namespace dol;
    std::map<std::string, Cell> cells;
    for (const char *extra : kExtras) {
        double alone_acc = 0, alone_scope = 0;
        double comp_acc = 0, comp_scope = 0, weight = 0;
        std::uint64_t alone_issued = 0, comp_issued = 0;

        const auto alone_runs = collector().byPrefetcher(extra);
        const auto comp_runs =
            collector().byPrefetcher("TPC+" + std::string(extra));
        for (std::size_t i = 0;
             i < alone_runs.size() && i < comp_runs.size(); ++i) {
            const RunOutput &alone = *alone_runs[i];
            const RunOutput &composed = *comp_runs[i];
            const double w = alone.baselineMpkiL1 + 1e-9;
            alone_acc += alone.focus.effectiveAccuracy() * w;
            alone_scope += alone.focusScope * w;
            alone_issued += alone.focus.issued;
            comp_acc += composed.focus.effectiveAccuracy() * w;
            comp_scope += composed.focusScope * w;
            comp_issued += composed.focus.issued;
            weight += w;
        }
        if (weight > 0) {
            Cell cell;
            cell.alone = {alone_acc / weight, alone_scope / weight,
                          alone_issued};
            cell.composed = {comp_acc / weight, comp_scope / weight,
                             comp_issued};
            cells[extra] = cell;
        }
    }

    std::printf("\n== Figure 14: alone vs as-a-TPC-component, inside "
                "the region TPC does not cover ==\n");
    TextTable table({"design", "alone acc", "alone scope",
                     "component acc", "component scope"});
    for (const char *extra : kExtras) {
        const Cell &cell = cells[extra];
        table.addRow({extra, fmt("%.2f", cell.alone.accuracy),
                      fmt("%.2f", cell.alone.scope),
                      fmt("%.2f", cell.composed.accuracy),
                      fmt("%.2f", cell.composed.scope)});
    }
    table.print();
    std::printf("(paper: accuracy improves in every case when "
                "composed, e.g. SMS 27%% -> 43%%)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    for (const char *extra : kExtras)
        registerExtra(extra);
    return dol::bench::benchMain(argc, argv, &collector(),
                                 printSummary);
}
