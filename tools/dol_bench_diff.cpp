/**
 * @file
 * Compare two perf_throughput documents (dol-sweep-v1) cell by cell.
 *
 * Reads a baseline and a candidate BENCH_throughput.json, matches
 * cells by (workload, prefetcher), and prints a per-cell ratio table
 * (candidate / baseline accesses_per_sec; instrs_per_sec for cells
 * with no accesses), plus the geometric mean and the min/max ratio.
 *
 * Exit status encodes a floor check for CI:
 *   0  every matched cell's ratio >= --floor and the geometric mean
 *      >= --geomean-floor (both default 0: report only)
 *   1  at least one cell (or the geomean) regressed below its floor
 *   2  usage/parse error or no matching cells
 *
 * Wall-clock ratios are noisy by nature; the per-cell floor is meant
 * to catch structural regressions (2x slowdowns), not 5% jitter, so
 * it stays well below 1.0 — single cells swing 20%+ between healthy
 * runs on a busy host. The geomean is far more stable, so its floor
 * can sit much closer to 1.0 and catches broad regressions the
 * per-cell floor would tolerate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/json_reader.hpp"

namespace
{

using dol::runner::JsonValue;

struct Cell
{
    std::string workload;
    std::string prefetcher;
    double accessesPerSec = 0.0;
    double instrsPerSec = 0.0;

    /** Throughput metric: accesses/s, or instrs/s for access-free
     *  cells (a "none" prefetcher cell still retires instructions). */
    double
    rate() const
    {
        return accessesPerSec > 0.0 ? accessesPerSec : instrsPerSec;
    }
};

bool
loadCells(const std::string &path, std::vector<Cell> &out)
{
    JsonValue doc;
    std::string error;
    if (!dol::runner::parseJsonFile(path, doc, &error)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return false;
    }
    if (doc.stringOr("schema", "") != "dol-sweep-v1") {
        std::fprintf(stderr, "%s: not a dol-sweep-v1 document\n",
                     path.c_str());
        return false;
    }
    const JsonValue *results = doc.find("results");
    if (!results || results->type() != JsonValue::Type::kArray) {
        std::fprintf(stderr, "%s: missing results array\n",
                     path.c_str());
        return false;
    }
    for (const JsonValue &row : results->array()) {
        Cell cell;
        cell.workload = row.stringOr("workload", "");
        cell.prefetcher = row.stringOr("prefetcher", "");
        if (const JsonValue *metrics = row.find("metrics")) {
            cell.accessesPerSec =
                metrics->numberOr("accesses_per_sec", 0.0);
            cell.instrsPerSec =
                metrics->numberOr("instrs_per_sec", 0.0);
        }
        if (!cell.workload.empty())
            out.push_back(std::move(cell));
    }
    return true;
}

const Cell *
findCell(const std::vector<Cell> &cells, const Cell &key)
{
    for (const Cell &cell : cells) {
        if (cell.workload == key.workload &&
            cell.prefetcher == key.prefetcher)
            return &cell;
    }
    return nullptr;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CANDIDATE.json [--floor R]\n"
                 "          [--geomean-floor R]\n"
                 "  --floor R          fail (exit 1) if any cell\n"
                 "                     ratio < R (default 0: report)\n"
                 "  --geomean-floor R  fail (exit 1) if the geomean\n"
                 "                     ratio < R (default 0: report)\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string candidate_path;
    double floor_ratio = 0.0;
    double geomean_floor = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--floor" && i + 1 < argc) {
            floor_ratio = std::strtod(argv[++i], nullptr);
        } else if (arg == "--geomean-floor" && i + 1 < argc) {
            geomean_floor = std::strtod(argv[++i], nullptr);
        } else if (baseline_path.empty()) {
            baseline_path = arg;
        } else if (candidate_path.empty()) {
            candidate_path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (baseline_path.empty() || candidate_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::vector<Cell> baseline;
    std::vector<Cell> candidate;
    if (!loadCells(baseline_path, baseline) ||
        !loadCells(candidate_path, candidate))
        return 2;

    std::printf("%-20s %-26s %12s %12s %7s\n", "workload",
                "prefetcher", "base", "cand", "ratio");
    double log_sum = 0.0;
    double min_ratio = 0.0;
    double max_ratio = 0.0;
    std::string min_cell;
    std::string max_cell;
    unsigned matched = 0;
    unsigned below_floor = 0;
    for (const Cell &base : baseline) {
        const Cell *cand = findCell(candidate, base);
        if (!cand || base.rate() <= 0.0 || cand->rate() <= 0.0)
            continue;
        const double ratio = cand->rate() / base.rate();
        const std::string label = base.workload + "/" + base.prefetcher;
        std::printf("%-20s %-26s %12.0f %12.0f %6.2fx%s\n",
                    base.workload.c_str(), base.prefetcher.c_str(),
                    base.rate(), cand->rate(), ratio,
                    floor_ratio > 0.0 && ratio < floor_ratio ? "  <-- below floor"
                                                             : "");
        log_sum += std::log(ratio);
        if (matched == 0 || ratio < min_ratio) {
            min_ratio = ratio;
            min_cell = label;
        }
        if (matched == 0 || ratio > max_ratio) {
            max_ratio = ratio;
            max_cell = label;
        }
        ++matched;
        if (floor_ratio > 0.0 && ratio < floor_ratio)
            ++below_floor;
    }

    if (matched == 0) {
        std::fprintf(stderr, "no matching cells between %s and %s\n",
                     baseline_path.c_str(), candidate_path.c_str());
        return 2;
    }

    const double geomean = std::exp(log_sum / matched);
    std::printf("\ncells matched: %u\n", matched);
    std::printf("geomean ratio: %.3fx\n", geomean);
    std::printf("min ratio:     %.3fx (%s)\n", min_ratio,
                min_cell.c_str());
    std::printf("max ratio:     %.3fx (%s)\n", max_ratio,
                max_cell.c_str());
    bool failed = false;
    if (floor_ratio > 0.0) {
        std::printf("floor:         %.3fx -> %s\n", floor_ratio,
                    below_floor == 0 ? "PASS" : "FAIL");
        failed = failed || below_floor != 0;
    }
    if (geomean_floor > 0.0) {
        const bool ok = geomean >= geomean_floor;
        std::printf("geomean floor: %.3fx -> %s\n", geomean_floor,
                    ok ? "PASS" : "FAIL");
        failed = failed || !ok;
    }
    return failed ? 1 : 0;
}
