/**
 * @file
 * Kill-and-resume end-to-end check for the runner's fault tolerance.
 *
 * Drives the real dolsim binary through the failure modes the
 * checkpoint journal must survive, and asserts the resumed sweep's
 * dol-sweep-v1 document is byte-identical (deterministic portion) to
 * an uninterrupted baseline:
 *
 *   1. clean baseline sweep (no checkpoint)
 *   2. hard crash: --fault-plan abort@2 (std::_Exit, no flushing —
 *      SIGKILL semantics) at --jobs 1 and --jobs 4, then --resume
 *   3. SIGTERM mid-sweep: a hang@2 fault parks cell 2, the driver
 *      waits until the journal holds 2 cells, signals, expects the
 *      graceful-drain exit code (143), then resumes
 *   4. SIGKILL mid-sweep: same setup, no chance to drain, then
 *      resumes across the torn process
 *
 * "Byte-identical deterministic portion" means every byte up to the
 * documented-nondeterministic "timing" section — schema, config,
 * results (all rows, all digits) — compared with memcmp, not a parsed
 * approximation.
 *
 * Usage: dol_resume_check <path-to-dolsim> <scratch-dir>
 * Exit 0 when every scenario passes. Run by the tier-1 resume_smoke
 * test and the CI kill-and-resume smoke job.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "runner/checkpoint.hpp"

namespace
{

int g_failures = 0;

void
fail(const std::string &message)
{
    std::fprintf(stderr, "FAIL: %s\n", message.c_str());
    ++g_failures;
}

struct RunResult
{
    bool ran = false;    ///< fork/exec worked
    bool exited = false; ///< normal exit (vs signal)
    int code = -1;       ///< exit code when exited
    int signal = 0;      ///< terminating signal otherwise
};

pid_t
spawn(const std::string &exe, const std::vector<std::string> &args,
      const std::string &log_path)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    const int fd =
        open(log_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
        dup2(fd, 1);
        dup2(fd, 2);
        close(fd);
    }
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(exe.c_str()));
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    execv(exe.c_str(), argv.data());
    _exit(127);
}

RunResult
await(pid_t pid)
{
    RunResult result;
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return result;
    result.ran = true;
    if (WIFEXITED(status)) {
        result.exited = true;
        result.code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        result.signal = WTERMSIG(status);
    }
    return result;
}

RunResult
run(const std::string &exe, const std::vector<std::string> &args,
    const std::string &log_path)
{
    return await(spawn(exe, args, log_path));
}

/** Poll until @p path journals at least @p want completed jobs. */
bool
waitForJournaledJobs(const std::string &path, std::size_t want,
                     int timeout_ms)
{
    for (int waited = 0; waited < timeout_ms; waited += 20) {
        const auto loaded = dol::runner::CheckpointJournal::load(path);
        if (loaded.fileExists && loaded.valid &&
            loaded.jobs.size() >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    char buffer[1 << 14];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        out.append(buffer, got);
    std::fclose(file);
    return true;
}

/**
 * The document's deterministic portion: every byte before the
 * "timing" key (which is always last and documented as wall-clock
 * dependent). Empty when the marker is missing.
 */
std::string
deterministicPrefix(const std::string &document)
{
    const std::size_t pos = document.find("\"timing\"");
    return pos == std::string::npos ? std::string()
                                    : document.substr(0, pos);
}

bool
exists(const std::string &path)
{
    struct stat st;
    return stat(path.c_str(), &st) == 0;
}

/** Shared sweep grid (6 cells, small budget) + scenario flags. */
std::vector<std::string>
gridArgs(const std::string &json_path,
         const std::vector<std::string> &extra)
{
    std::vector<std::string> args = {
        "--workload",   "libquantum.syn,mcf.syn,omnetpp.syn",
        "--prefetcher", "TPC,SPP",
        "--instrs",     "20000",
        "--quiet",      "--json",
        json_path};
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
}

void
compareAgainstBaseline(const std::string &scenario,
                       const std::string &baseline_prefix,
                       const std::string &json_path)
{
    std::string document;
    if (!readFile(json_path, document)) {
        fail(scenario + ": resumed run wrote no " + json_path);
        return;
    }
    const std::string prefix = deterministicPrefix(document);
    if (prefix.empty()) {
        fail(scenario + ": no \"timing\" marker in " + json_path);
        return;
    }
    if (prefix != baseline_prefix) {
        fail(scenario + ": resumed document differs from the "
                        "uninterrupted baseline (deterministic "
                        "portion)");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(
            stderr,
            "usage: dol_resume_check <path-to-dolsim> <scratch-dir>\n");
        return 2;
    }
    const std::string dolsim = argv[1];
    const std::string dir = argv[2];
    mkdir(dir.c_str(), 0755);
    const std::string log = dir + "/dolsim.log";

    // 1. Uninterrupted baseline.
    const std::string base_json = dir + "/base.json";
    {
        const RunResult result =
            run(dolsim, gridArgs(base_json, {"--jobs", "2"}), log);
        if (!result.exited || result.code != 0) {
            fail("baseline sweep did not exit 0");
            return 1;
        }
    }
    std::string baseline_doc;
    if (!readFile(base_json, baseline_doc)) {
        fail("baseline sweep wrote no JSON");
        return 1;
    }
    const std::string baseline_prefix =
        deterministicPrefix(baseline_doc);
    if (baseline_prefix.empty()) {
        fail("baseline document has no \"timing\" marker");
        return 1;
    }

    // 2. Hard crash (abort fault == SIGKILL semantics) + resume, at
    //    one and at four workers.
    for (const std::string jobs : {"1", "4"}) {
        const std::string tag = "abort-resume[jobs=" + jobs + "]";
        const std::string ckpt = dir + "/abort" + jobs + ".ckpt";
        const std::string json = dir + "/abort" + jobs + ".json";
        std::remove(ckpt.c_str());
        std::remove(json.c_str());
        RunResult result =
            run(dolsim,
                gridArgs(json, {"--jobs", jobs, "--checkpoint", ckpt,
                                 "--fault-plan", "abort@2"}),
                log);
        if (!result.exited || result.code != 137)
            fail(tag + ": crashing run should exit 137");
        if (exists(json))
            fail(tag + ": crashed run must not write JSON");
        const auto loaded = dol::runner::CheckpointJournal::load(ckpt);
        if (!loaded.fileExists || !loaded.valid)
            fail(tag + ": no readable journal after the crash");
        // Serial execution reaches the faulting cell only after cells
        // 0 and 1 journal; with 4 workers the abort races the first
        // completions, so an empty (but valid) journal is legal there.
        if (jobs == "1" && loaded.jobs.size() != 2)
            fail(tag + ": expected exactly 2 journaled cells");
        result = run(dolsim,
                     gridArgs(json, {"--jobs", jobs, "--checkpoint",
                                      ckpt, "--resume"}),
                     log);
        if (!result.exited || result.code != 0)
            fail(tag + ": resumed run should exit 0");
        compareAgainstBaseline(tag, baseline_prefix, json);
        if (exists(ckpt))
            fail(tag + ": journal should be removed after a clean "
                       "completed resume");
    }

    // 3. SIGTERM mid-sweep (graceful drain) + resume, and
    // 4. SIGKILL mid-sweep (no drain) + resume.
    for (const int signo : {SIGTERM, SIGKILL}) {
        const std::string name =
            signo == SIGTERM ? "sigterm" : "sigkill";
        const std::string tag = name + "-resume";
        const std::string ckpt = dir + "/" + name + ".ckpt";
        const std::string json = dir + "/" + name + ".json";
        std::remove(ckpt.c_str());
        std::remove(json.c_str());
        // hang@2 parks the third cell forever; by the time the journal
        // holds two cells the process is reliably inside the hang (or
        // about to enter it), so the kill point is deterministic.
        const pid_t pid =
            spawn(dolsim,
                  gridArgs(json, {"--jobs", "1", "--checkpoint",
                                   ckpt, "--fault-plan", "hang@2"}),
                  log);
        if (!waitForJournaledJobs(ckpt, 2, 30000)) {
            fail(tag + ": journal never reached 2 cells");
            kill(pid, SIGKILL);
            await(pid);
            continue;
        }
        kill(pid, signo);
        const RunResult result = await(pid);
        if (signo == SIGTERM) {
            // Graceful drain: the handler raises the stop flag, the
            // hang unwinds, dolsim exits 128+15 on its own.
            if (!result.exited || result.code != 128 + SIGTERM)
                fail(tag + ": drained run should exit 143");
        } else {
            if (result.exited || result.signal != SIGKILL)
                fail(tag + ": run should die by SIGKILL");
        }
        if (exists(json))
            fail(tag + ": killed run must not write JSON");
        const RunResult resumed =
            run(dolsim,
                gridArgs(json, {"--jobs", "1", "--checkpoint", ckpt,
                                 "--resume"}),
                log);
        if (!resumed.exited || resumed.code != 0)
            fail(tag + ": resumed run should exit 0");
        compareAgainstBaseline(tag, baseline_prefix, json);
    }

    if (g_failures) {
        std::fprintf(stderr,
                     "dol_resume_check: %d scenario check(s) failed "
                     "(dolsim output: %s)\n",
                     g_failures, log.c_str());
        return 1;
    }
    std::printf("dol_resume_check: all kill-and-resume scenarios "
                "passed\n");
    return 0;
}
