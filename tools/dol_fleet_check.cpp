/**
 * @file
 * Kill-and-merge end-to-end check for fleet execution.
 *
 * Drives the real dolsim binary through sharded-fleet scenarios on a
 * 60-cell grid (3 workloads × 2 prefetchers × 10 seed variants) and
 * asserts the merged dol-sweep-v1 document is byte-identical
 * (deterministic portion) to uninterrupted single-process runs:
 *
 *   1. references: plain sweeps at --jobs 1 and --jobs 4 must agree
 *      with each other (the runner's own determinism contract)
 *   2. clean fleet: --fleet with 3 workers merges to the same bytes
 *   3. worker loss: --fault-plan abort@7 kills whichever worker owns
 *      cell 7 mid-range (std::_Exit — SIGKILL semantics); the
 *      coordinator must expire that lease, re-grant the remainder
 *      exactly once, and still merge to the reference bytes
 *
 * The DOLLEAS1 ledger is then replayed to assert the lifecycle:
 * every lease settled, ≥1 expiry in the fault scenario, and each
 * expired lease re-covered by exactly one successor grant.
 *
 * Usage: dol_fleet_check <path-to-dolsim> <scratch-dir>
 * Exit 0 when every scenario passes. Run by the tier-1 fleet_smoke
 * test and the CI fleet smoke job.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/ledger.hpp"

namespace
{

int g_failures = 0;

void
fail(const std::string &message)
{
    std::fprintf(stderr, "FAIL: %s\n", message.c_str());
    ++g_failures;
}

struct RunResult
{
    bool ran = false;
    bool exited = false;
    int code = -1;
    int signal = 0;
};

RunResult
run(const std::string &exe, const std::vector<std::string> &args,
    const std::string &log_path)
{
    const pid_t pid = fork();
    if (pid == 0) {
        std::FILE *log = std::fopen(log_path.c_str(), "ab");
        if (log) {
            dup2(fileno(log), 1);
            dup2(fileno(log), 2);
        }
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(exe.c_str()));
        for (const std::string &arg : args)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        execv(exe.c_str(), argv.data());
        _exit(127);
    }
    RunResult result;
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return result;
    result.ran = true;
    if (WIFEXITED(status)) {
        result.exited = true;
        result.code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        result.signal = WTERMSIG(status);
    }
    return result;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    out.clear();
    char buffer[1 << 14];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        out.append(buffer, got);
    std::fclose(file);
    return true;
}

/** Every byte before the wall-clock-dependent "timing" section. */
std::string
deterministicPrefix(const std::string &document)
{
    const std::size_t pos = document.find("\"timing\"");
    return pos == std::string::npos ? std::string()
                                    : document.substr(0, pos);
}

/** The shared 60-cell grid + per-scenario extra flags. */
std::vector<std::string>
gridArgs(const std::string &json_path,
         const std::vector<std::string> &extra)
{
    std::vector<std::string> args = {
        "--workload",      "libquantum.syn,mcf.syn,omnetpp.syn",
        "--prefetcher",    "TPC,SPP",
        "--instrs",        "5000",
        "--seed-variants", "10",
        "--quiet",         "--json",
        json_path};
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
}

std::string
loadPrefix(const std::string &scenario, const std::string &json_path)
{
    std::string document;
    if (!readFile(json_path, document)) {
        fail(scenario + ": no document at " + json_path);
        return {};
    }
    const std::string prefix = deterministicPrefix(document);
    if (prefix.empty())
        fail(scenario + ": no \"timing\" marker in " + json_path);
    return prefix;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(
            stderr,
            "usage: dol_fleet_check <path-to-dolsim> <scratch-dir>\n");
        return 2;
    }
    const std::string dolsim = argv[1];
    const std::string dir = argv[2];
    mkdir(dir.c_str(), 0755);
    const std::string log = dir + "/dolsim.log";

    // 1. Single-process references at two worker counts: the fleet's
    // correctness target, and a re-assertion of the runner's own
    // --jobs determinism on this grid.
    std::string reference;
    for (const std::string jobs : {"1", "4"}) {
        const std::string tag = "reference[jobs=" + jobs + "]";
        const std::string json = dir + "/ref" + jobs + ".json";
        const RunResult result =
            run(dolsim, gridArgs(json, {"--jobs", jobs}), log);
        if (!result.exited || result.code != 0) {
            fail(tag + ": sweep did not exit 0");
            return 1;
        }
        const std::string prefix = loadPrefix(tag, json);
        if (prefix.empty())
            return 1;
        if (reference.empty())
            reference = prefix;
        else if (prefix != reference)
            fail("references at --jobs 1 and --jobs 4 disagree");
    }

    // 2. Clean fleet run: 3 workers, no faults.
    {
        const std::string tag = "fleet-clean";
        const std::string json = dir + "/fleet_clean.json";
        const std::string leases = dir + "/clean.leases";
        const RunResult result =
            run(dolsim,
                gridArgs(json, {"--fleet", "--fleet-workers", "3",
                                "--lease-dir", leases}),
                log);
        if (!result.exited || result.code != 0)
            fail(tag + ": fleet run did not exit 0");
        else if (loadPrefix(tag, json) != reference)
            fail(tag + ": merged document differs from the "
                       "single-process reference");
        const auto ledger = dol::fleet::LeaseLedger::load(
            dol::fleet::ledgerPath(leases));
        if (!ledger.valid || !ledger.consistent)
            fail(tag + ": ledger did not replay cleanly");
        else if (!ledger.expired.empty())
            fail(tag + ": clean fleet should expire no leases");
        else if (ledger.completed.size() != ledger.grants.size())
            fail(tag + ": every granted lease should complete");
    }

    // 3. Worker loss: the worker owning cell 7 aborts mid-range
    // (SIGKILL semantics); its lease must expire and be re-granted
    // exactly once, and the merge must still hit the reference bytes.
    {
        const std::string tag = "fleet-abort";
        const std::string json = dir + "/fleet_abort.json";
        const std::string leases = dir + "/abort.leases";
        const RunResult result =
            run(dolsim,
                gridArgs(json, {"--fleet", "--fleet-workers", "3",
                                "--lease-dir", leases, "--lease-ttl",
                                "30000", "--fault-plan", "abort@7"}),
                log);
        if (!result.exited || result.code != 0)
            fail(tag + ": fleet run did not exit 0");
        else if (loadPrefix(tag, json) != reference)
            fail(tag + ": merged document differs from the "
                       "single-process reference after a worker "
                       "loss");
        const auto ledger = dol::fleet::LeaseLedger::load(
            dol::fleet::ledgerPath(leases));
        if (!ledger.valid || !ledger.consistent) {
            fail(tag + ": ledger did not replay cleanly");
        } else {
            if (ledger.expired.empty())
                fail(tag + ": the aborted worker's lease never "
                           "expired");
            std::size_t successors = 0;
            for (const dol::fleet::LeaseGrant &grant : ledger.grants) {
                if (grant.parentLease != dol::fleet::kNoParentLease)
                    ++successors;
            }
            if (successors != ledger.expired.size())
                fail(tag + ": every expired lease must be re-granted "
                           "exactly once");
        }
    }

    if (g_failures) {
        std::fprintf(stderr,
                     "dol_fleet_check: %d scenario check(s) failed "
                     "(dolsim output: %s)\n",
                     g_failures, log.c_str());
        return 1;
    }
    std::printf(
        "dol_fleet_check: all kill-and-merge scenarios passed\n");
    return 0;
}
