/**
 * @file
 * dolsim — command-line experiment driver.
 *
 * Runs any (workload, prefetcher) combination and reports the paper's
 * metrics; sweeps over whole suites run in parallel on the runner
 * subsystem (deterministic: `--jobs 1` and `--jobs N` emit identical
 * metric rows) with CSV and structured JSON output for plotting.
 *
 *   dolsim --list
 *   dolsim --workload libquantum.syn --prefetcher TPC
 *   dolsim --suite spec --prefetcher TPC,SPP,BOP --jobs 8 --csv
 *   dolsim --suite all --prefetcher TPC --json results.json
 *   dolsim --workload mcf.syn --prefetcher TPC --dest l2
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "metrics/table.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"
#include "workloads/trace_file.hpp"

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    std::vector<std::string> prefetchers{"TPC"};
    std::uint64_t instrs = 200000;
    unsigned jobs = 0; ///< 0 = hardware concurrency
    bool csv = false;
    bool list = false;
    bool quiet = false; ///< suppress the progress line
    std::string json; ///< write dol-sweep-v1 JSON to this file
    std::string record; ///< record first workload's trace to a file
    std::string replay; ///< replay a trace file as the workload
    std::string dest; ///< "", "l1", "l2", "stratified"
};

/** Split on commas, skipping empty tokens ("TPC,,SPP" -> 2 names). */
std::vector<std::string>
splitCommas(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            out.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
usage()
{
    std::printf(
        "usage: dolsim [options]\n"
        "  --list                     list workloads and exit\n"
        "  --workload NAME[,NAME...]  workloads to run\n"
        "  --suite NAME               spec|crono|starbench|npb|all\n"
        "  --prefetcher NAME[,...]    registry names (default TPC)\n"
        "  --instrs N                 instruction budget (default "
        "200000)\n"
        "  --jobs N                   parallel sweep workers "
        "(default: hardware threads)\n"
        "  --json FILE                write structured results "
        "(dol-sweep-v1)\n"
        "  --dest l1|l2|stratified    force/oracle prefetch "
        "destination\n"
        "  --record FILE              record the workload's trace\n"
        "  --replay FILE              replay a recorded trace\n"
        "  --csv                      machine-readable output\n"
        "  --quiet                    no progress line on stderr\n");
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                dol::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--list") {
            options.list = true;
        } else if (arg == "--workload") {
            for (const auto &name : splitCommas(next()))
                options.workloads.push_back(name);
        } else if (arg == "--suite") {
            const std::string suite = next();
            for (const auto &spec : dol::allWorkloads()) {
                if (suite == "all" || spec.suite == suite)
                    options.workloads.push_back(spec.name);
            }
            if (options.workloads.empty())
                dol::fatal("unknown suite: " + suite);
        } else if (arg == "--prefetcher") {
            options.prefetchers = splitCommas(next());
            if (options.prefetchers.empty())
                dol::fatal("empty --prefetcher list");
        } else if (arg == "--instrs") {
            options.instrs = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--json") {
            options.json = next();
        } else if (arg == "--dest") {
            options.dest = next();
        } else if (arg == "--record") {
            options.record = next();
        } else if (arg == "--replay") {
            options.replay = next();
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            dol::fatal("unknown option: " + arg);
        }
    }
    if (options.workloads.empty())
        options.workloads.push_back("libquantum.syn");
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    const Options options = parse(argc, argv);

    if (options.list) {
        TextTable table({"workload", "suite"});
        for (const auto &spec : allWorkloads())
            table.addRow({spec.name, spec.suite});
        table.print();
        return 0;
    }

    SimConfig config;
    config.maxInstrs = options.instrs;

    if (!options.record.empty()) {
        const WorkloadSpec &spec = findWorkload(options.workloads[0]);
        MemoryImage image;
        auto kernel = spec.factory(image);
        const std::uint64_t written =
            recordTrace(*kernel, options.record, options.instrs);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(written),
                    spec.name.c_str(), options.record.c_str());
        return 0;
    }

    RunOptions run_options;
    if (options.dest == "l1")
        run_options.forceDest = kL1;
    else if (options.dest == "l2")
        run_options.forceDest = kL2;
    else if (options.dest == "stratified")
        run_options.oracleDest = true;
    else if (!options.dest.empty())
        fatal("bad --dest value: " + options.dest);

    std::vector<WorkloadSpec> specs;
    if (!options.replay.empty()) {
        const std::string path = options.replay;
        specs.push_back(
            {"replay:" + path, "trace", [path](MemoryImage &image) {
                 return std::make_unique<TraceKernel>(image, path);
             }});
    } else {
        for (const std::string &workload : options.workloads)
            specs.push_back(findWorkload(workload));
    }

    runner::SweepOptions sweep_options;
    sweep_options.jobs = options.jobs;
    sweep_options.progress = !options.quiet;
    runner::SweepRunner sweep(config, sweep_options);
    sweep.addGrid(specs, options.prefetchers, run_options,
                  options.dest.empty() ? "" : ":" + options.dest);

    const runner::SweepRunner::Report report = sweep.run();

    if (options.csv) {
        std::fputs(report.store.toCsv().c_str(), stdout);
    } else {
        TextTable table({"workload", "prefetcher", "speedup", "scope",
                         "accL1", "covL1", "traffic"});
        for (const runner::MetricsRow &row : report.store.rows()) {
            table.addRow({row.workload, row.prefetcher,
                          fmt("%.3f", row.speedup),
                          fmt("%.2f", row.scope),
                          fmt("%.2f", row.effAccuracyL1),
                          fmt("%.2f", row.effCoverageL1),
                          fmt("%.3f", row.trafficNormalized)});
        }
        table.print();
    }

    if (!options.json.empty()) {
        runner::SweepMeta meta = report.meta;
        meta.generator = "dolsim";
        if (!report.store.writeJsonFile(options.json, meta))
            fatal("cannot write " + options.json);
        if (!options.quiet) {
            std::fprintf(stderr, "wrote %s (%zu rows)\n",
                         options.json.c_str(),
                         report.store.rows().size());
        }
    }
    return 0;
}
