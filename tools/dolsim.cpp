/**
 * @file
 * dolsim — command-line experiment driver.
 *
 * Runs any (workload, prefetcher) combination and reports the paper's
 * metrics; sweeps over whole suites run in parallel on the runner
 * subsystem (deterministic: `--jobs 1` and `--jobs N` emit identical
 * metric rows) with CSV and structured JSON output for plotting.
 *
 *   dolsim --list
 *   dolsim --workload libquantum.syn --prefetcher TPC
 *   dolsim --suite spec --prefetcher TPC,SPP,BOP --jobs 8 --csv
 *   dolsim --suite all --prefetcher TPC --json results.json
 *   dolsim --workload mcf.syn --prefetcher TPC --dest l2
 *   dolsim --workload mcf.syn --prefetcher TPC --trace run.trc
 *   dolsim --dump-trace run.trc
 *   dolsim --workload mcf.syn --counters --json results.json
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "check/adaptive_check.hpp"
#include "check/campaign.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/worker.hpp"
#include "check/multicore_check.hpp"
#include "common/log.hpp"
#include "metrics/table.hpp"
#include "runner/cli.hpp"
#include "runner/fault.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "sim/contention.hpp"
#include "sim/experiment.hpp"
#include "trace/trace_io.hpp"
#include "workloads/contention.hpp"
#include "workloads/suite.hpp"
#include "workloads/trace_file.hpp"
#include "workloads/trace_ingest.hpp"

namespace
{

using dol::runner::parseUnsignedInRange;
using dol::runner::splitCommas;

struct Options
{
    std::vector<std::string> workloads;
    std::vector<std::string> prefetchers{"TPC"};
    std::uint64_t instrs = 200000;
    unsigned jobs = 0; ///< 0 = hardware concurrency
    bool csv = false;
    bool list = false;
    bool quiet = false; ///< suppress the progress line
    bool counters = false; ///< collect per-component counters
    std::string json; ///< write dol-sweep-v1 JSON to this file
    std::string record; ///< record first workload's trace to a file
    std::string replay; ///< replay a trace file as the workload
    std::string trace; ///< write binary event trace(s) to this path
    std::string dumpTrace; ///< dump a binary event trace as text
    std::string dest; ///< "", "l1", "l2", "stratified"
    bool adaptiveCoordinator = false; ///< --coordinator adaptive
    std::string traceIn; ///< ChampSim trace to run as the workload

    // Multi-core contention scenarios (src/sim/contention.hpp).
    std::vector<std::string> mixes; ///< named contention mixes
    std::vector<std::string> arbitrations{"demand-first"};
    bool listMixes = false;

    // Differential fuzzing (src/check/).
    std::uint64_t fuzz = 0; ///< campaign size; 0 = no campaign
    std::uint64_t fuzzMulticore = 0; ///< multicore campaign size
    std::uint64_t fuzzAdaptive = 0; ///< adaptive-coordinator campaign
    std::uint64_t fuzzSeed = 1;
    std::string fuzzDir = "fuzz-repro";
    std::string fuzzMutate; ///< reference-model mutation (self-test)
    std::string fuzzReplay; ///< shrunk reproducer trace to re-check
    std::uint64_t fuzzCaseSeed = 0;
    bool fuzzCaseSeedSet = false;

    // Fault tolerance (README "Fault tolerance").
    std::string checkpoint; ///< journal completed cells here
    bool resume = false; ///< skip cells the journal records
    std::uint64_t cellTimeoutMs = 0; ///< per-attempt budget; 0 = none
    std::uint64_t retries = 0; ///< extra attempts per failing cell
    std::uint64_t retryBackoffMs = 100;
    std::string faultPlanSpec; ///< deterministic fault injection

    // Fleet execution (README "Fleet execution").
    bool fleet = false; ///< coordinate a sharded multi-process sweep
    bool fleetWorker = false; ///< execute one leased cell range
    std::uint64_t fleetWorkers = 2; ///< concurrent worker processes
    std::string leaseDir; ///< ledger + per-lease journals
    std::uint64_t leaseId = 0; ///< lease to execute (--fleet-worker)
    bool leaseIdSet = false;
    std::uint64_t leaseTtlMs = 30000; ///< worker liveness budget
    /** Replicate the grid K times with variants :s0..:sK-1 (distinct
     *  per-cell seeds) — cheap way to scale a grid to fleet size. */
    std::uint64_t seedVariants = 0;
};

void
usage()
{
    std::printf(
        "usage: dolsim [options]\n"
        "  --list                     list workloads and exit\n"
        "  --workload NAME[,NAME...]  workloads to run\n"
        "  --suite NAME               "
        "spec|crono|starbench|npb|temporal|trace|all\n"
        "  --prefetcher NAME[,...]    registry names (default TPC)\n"
        "  --instrs N                 instruction budget (default "
        "200000)\n"
        "  --jobs N                   parallel sweep workers "
        "(default: hardware threads)\n"
        "  --json FILE                write structured results "
        "(dol-sweep-v1)\n"
        "  --dest l1|l2|stratified    force/oracle prefetch "
        "destination\n"
        "  --coordinator MODE         hardwired|adaptive (default "
        "hardwired)\n"
        "  --trace-in FILE            run a ChampSim trace "
        "(.champsim/.champsim.xz) as\n"
        "                             the workload\n"
        "  --record FILE              record the workload's trace\n"
        "  --replay FILE              replay a recorded trace\n"
        "  --trace FILE               write binary event trace(s); "
        "multi-cell sweeps\n"
        "                             write FILE.<workload>.<pf>\n"
        "  --dump-trace FILE          print a binary event trace as "
        "text and exit\n"
        "  --counters                 collect decision counters "
        "(JSON \"counters\")\n"
        "  --list-mixes               list contention mixes and exit\n"
        "  --mix NAME[,NAME...]       run named contention mixes "
        "(heterogeneous cores,\n"
        "                             solo baselines, fairness "
        "metrics)\n"
        "  --arbitration P[,P...]     DRAM arbitration per mix run: "
        "demand-first|fifo|rr\n"
        "  --fuzz N                   run an N-case differential "
        "fuzz campaign\n"
        "  --fuzz-multicore N         run an N-case multicore "
        "determinism/attribution campaign\n"
        "  --fuzz-adaptive N          run an N-case adaptive-vs-"
        "hardwired differential campaign\n"
        "  --fuzz-seed S              campaign master seed "
        "(default 1)\n"
        "  --fuzz-dir DIR             shrunk-reproducer directory "
        "(default fuzz-repro)\n"
        "  --fuzz-mutate NAME         plant a reference-model bug "
        "(lru|rebind|t2confirm|rebind3|arbdrift|degstick)\n"
        "  --fuzz-replay FILE         re-check a shrunk reproducer "
        "(with --fuzz-case-seed)\n"
        "  --fuzz-case-seed S         case seed from the "
        "reproducer's sidecar\n"
        "  --checkpoint FILE          journal completed cells to FILE "
        "(crash-safe)\n"
        "  --resume                   skip cells FILE already "
        "journaled\n"
        "  --cell-timeout MS          per-attempt wall-clock budget "
        "per cell\n"
        "  --retries N                re-run failing/timed-out cells "
        "up to N times\n"
        "  --retry-backoff-ms MS      first-retry backoff, doubled "
        "per retry (default 100)\n"
        "  --fault-plan SPEC          inject faults: "
        "throw|hang|abort|stop@CELL[:TIMES],...\n"
        "  --fleet                    shard the sweep across worker "
        "processes (needs --json)\n"
        "  --fleet-workers N          concurrent worker processes "
        "(default 2)\n"
        "  --lease-dir DIR            lease ledger + per-worker "
        "journals (default JSON.leases)\n"
        "  --lease-ttl MS             kill+re-lease a worker whose "
        "journal stalls this long\n"
        "  --fleet-worker             run one leased range (spawned "
        "by --fleet; needs\n"
        "                             --lease-dir and --lease-id)\n"
        "  --lease-id N               lease to execute "
        "(--fleet-worker)\n"
        "  --seed-variants K          replicate the grid K times as "
        "variants :s0..:sK-1\n"
        "  --csv                      machine-readable output\n"
        "  --quiet                    no progress line on stderr\n"
        "exit codes: 0 ok, 1 usage/fatal error, 3 cells quarantined "
        "in failed_cells,\n"
        "            128+signal interrupted (drained; re-run with "
        "--resume)\n");
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                dol::fatal("missing value for " + arg);
            return argv[++i];
        };
        auto nextPath = [&]() -> std::string {
            const std::string value = next();
            if (value.empty())
                dol::fatal("empty path for " + arg);
            return value;
        };
        if (arg == "--list") {
            options.list = true;
        } else if (arg == "--workload") {
            for (const auto &name : splitCommas(next()))
                options.workloads.push_back(name);
        } else if (arg == "--suite") {
            const std::string suite = next();
            if (suite == "trace") {
                // The trace suite scans $DOL_TRACE_DIR and is kept out
                // of allWorkloads() (and "all") on purpose — see
                // workloads/suite.hpp.
                for (const auto &spec : dol::traceSuite())
                    options.workloads.push_back(spec.name);
                if (options.workloads.empty())
                    dol::fatal("no ChampSim traces found for --suite "
                               "trace (set DOL_TRACE_DIR or add "
                               "*.champsim files under tests/traces)");
            } else {
                for (const auto &spec : dol::allWorkloads()) {
                    if (suite == "all" || spec.suite == suite)
                        options.workloads.push_back(spec.name);
                }
                if (options.workloads.empty())
                    dol::fatal("unknown suite: " + suite);
            }
        } else if (arg == "--coordinator") {
            const std::string mode = next();
            if (!dol::runner::parseCoordinatorMode(
                    mode, options.adaptiveCoordinator)) {
                dol::fatal("bad --coordinator value: '" + mode +
                           "' (hardwired|adaptive)");
            }
        } else if (arg == "--trace-in") {
            options.traceIn = nextPath();
        } else if (arg == "--prefetcher") {
            options.prefetchers = splitCommas(next());
            if (options.prefetchers.empty())
                dol::fatal("empty --prefetcher list");
        } else if (arg == "--instrs") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.instrs)) {
                dol::fatal("bad --instrs value: " + value);
            }
        } else if (arg == "--jobs") {
            // Strict: rejects "-1" (would wrap through strtoul),
            // "abc", "1e3", "". 0 means hardware concurrency.
            const std::string value = next();
            std::uint64_t jobs = 0;
            if (!parseUnsignedInRange(value, 0, 4096, jobs))
                dol::fatal("bad --jobs value: " + value);
            options.jobs = static_cast<unsigned>(jobs);
        } else if (arg == "--json") {
            options.json = nextPath();
        } else if (arg == "--dest") {
            options.dest = next();
        } else if (arg == "--record") {
            options.record = nextPath();
        } else if (arg == "--replay") {
            options.replay = nextPath();
        } else if (arg == "--trace") {
            options.trace = nextPath();
        } else if (arg == "--dump-trace") {
            options.dumpTrace = nextPath();
        } else if (arg == "--list-mixes") {
            options.listMixes = true;
        } else if (arg == "--mix") {
            for (const auto &name : splitCommas(next()))
                options.mixes.push_back(name);
        } else if (arg == "--arbitration") {
            options.arbitrations = splitCommas(next());
            if (options.arbitrations.empty())
                dol::fatal("empty --arbitration list");
        } else if (arg == "--fuzz") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.fuzz)) {
                dol::fatal("bad --fuzz value: " + value);
            }
        } else if (arg == "--fuzz-multicore") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.fuzzMulticore)) {
                dol::fatal("bad --fuzz-multicore value: " + value);
            }
        } else if (arg == "--fuzz-adaptive") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.fuzzAdaptive)) {
                dol::fatal("bad --fuzz-adaptive value: " + value);
            }
        } else if (arg == "--fuzz-seed") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 0, UINT64_MAX,
                                      options.fuzzSeed)) {
                dol::fatal("bad --fuzz-seed value: " + value);
            }
        } else if (arg == "--fuzz-dir") {
            options.fuzzDir = nextPath();
        } else if (arg == "--fuzz-mutate") {
            options.fuzzMutate = next();
        } else if (arg == "--fuzz-replay") {
            options.fuzzReplay = nextPath();
        } else if (arg == "--fuzz-case-seed") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 0, UINT64_MAX,
                                      options.fuzzCaseSeed)) {
                dol::fatal("bad --fuzz-case-seed value: " + value);
            }
            options.fuzzCaseSeedSet = true;
        } else if (arg == "--checkpoint") {
            options.checkpoint = nextPath();
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--cell-timeout") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.cellTimeoutMs)) {
                dol::fatal("bad --cell-timeout value: " + value);
            }
        } else if (arg == "--retries") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 0, 1000,
                                      options.retries)) {
                dol::fatal("bad --retries value: " + value);
            }
        } else if (arg == "--retry-backoff-ms") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 0, UINT64_MAX,
                                      options.retryBackoffMs)) {
                dol::fatal("bad --retry-backoff-ms value: " + value);
            }
        } else if (arg == "--fault-plan") {
            options.faultPlanSpec = next();
        } else if (arg == "--fleet") {
            options.fleet = true;
        } else if (arg == "--fleet-worker") {
            options.fleetWorker = true;
        } else if (arg == "--fleet-workers") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, 256,
                                      options.fleetWorkers)) {
                dol::fatal("bad --fleet-workers value: " + value);
            }
        } else if (arg == "--lease-dir") {
            options.leaseDir = nextPath();
        } else if (arg == "--lease-id") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.leaseId)) {
                dol::fatal("bad --lease-id value: " + value);
            }
            options.leaseIdSet = true;
        } else if (arg == "--lease-ttl") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, UINT64_MAX,
                                      options.leaseTtlMs)) {
                dol::fatal("bad --lease-ttl value: " + value);
            }
        } else if (arg == "--seed-variants") {
            const std::string value = next();
            if (!parseUnsignedInRange(value, 1, 65536,
                                      options.seedVariants)) {
                dol::fatal("bad --seed-variants value: " + value);
            }
        } else if (arg == "--counters") {
            options.counters = true;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            dol::fatal("unknown option: " + arg);
        }
    }
    if (options.workloads.empty())
        options.workloads.push_back("libquantum.syn");
    if (options.resume && options.checkpoint.empty())
        dol::fatal("--resume needs --checkpoint FILE");
    if (!options.traceIn.empty() &&
        (!options.replay.empty() || !options.record.empty())) {
        dol::fatal("--trace-in conflicts with --record/--replay (all "
                   "three define the workload source)");
    }
    const bool grid_only_conflict =
        options.fuzz || options.fuzzMulticore || options.fuzzAdaptive ||
        !options.mixes.empty() ||
        !options.trace.empty() || !options.record.empty() ||
        !options.replay.empty() || !options.fuzzReplay.empty() ||
        !options.traceIn.empty();
    if (options.fleet && options.fleetWorker)
        dol::fatal("--fleet and --fleet-worker are exclusive");
    if (options.fleet) {
        if (options.json.empty())
            dol::fatal("--fleet needs --json FILE (the merged "
                       "document)");
        if (grid_only_conflict || !options.checkpoint.empty())
            dol::fatal("--fleet supports plain grid sweeps only (no "
                       "mixes, traces, fuzzing, or --checkpoint)");
    }
    if (options.fleetWorker) {
        if (options.leaseDir.empty() || !options.leaseIdSet)
            dol::fatal(
                "--fleet-worker needs --lease-dir and --lease-id");
        if (grid_only_conflict || !options.checkpoint.empty())
            dol::fatal("--fleet-worker supports plain grid sweeps "
                       "only");
    }
    if (options.seedVariants && grid_only_conflict)
        dol::fatal("--seed-variants applies to plain grid sweeps "
                   "only");
    return options;
}

/** Exit status for a drained run: 128+signal, like the shell reports
 *  for a killed process; 128+SIGINT when the drain came from a stop
 *  fault rather than a real signal. */
int
interruptedExitCode()
{
    const int signo = dol::runner::lastStopSignal();
    return 128 + (signo ? signo : SIGINT);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    const Options options = parse(argc, argv);

    if (options.list) {
        TextTable table({"workload", "suite"});
        for (const auto &spec : allWorkloads())
            table.addRow({spec.name, spec.suite});
        table.print();
        return 0;
    }

    if (options.listMixes) {
        TextTable table({"mix", "cores", "prefetchers", "description"});
        for (const ContentionMix &mix : contentionMixes()) {
            table.addRow({mix.name,
                          std::to_string(mix.cores.size()),
                          mixPrefetcherLabel(mix), mix.description});
        }
        table.print();
        return 0;
    }

    if (!options.dumpTrace.empty()) {
        std::string error;
        if (!dumpTraceText(options.dumpTrace, stdout, &error)) {
            std::fprintf(stderr, "dolsim: %s\n", error.c_str());
            return 1;
        }
        return 0;
    }

    const auto mutation = check::mutationFromName(options.fuzzMutate);
    if (!mutation)
        fatal("bad --fuzz-mutate value: " + options.fuzzMutate);

    if (!options.fuzzReplay.empty()) {
        if (!options.fuzzCaseSeedSet) {
            fatal("--fuzz-replay needs --fuzz-case-seed (see the "
                  "reproducer's .txt sidecar)");
        }
        std::vector<TraceRecord> records;
        std::string error;
        if (!readTraceRecords(options.fuzzReplay, records, &error))
            fatal(error);
        check::CheckConfig check_config;
        check_config.params =
            check::makeFuzzParams(options.fuzzCaseSeed);
        check_config.mutation = *mutation;
        const check::DiffResult diff =
            check::checkTrace(records, check_config);
        std::printf("%s: %s\n", options.fuzzReplay.c_str(),
                    diff.summary().c_str());
        return diff.ok ? 0 : 1;
    }

    if (options.fuzz > 0) {
        runner::installStopHandlers();
        check::CampaignOptions campaign;
        campaign.cases = options.fuzz;
        campaign.seed = options.fuzzSeed;
        campaign.jobs = options.jobs;
        campaign.reproDir = options.fuzzDir;
        campaign.mutation = *mutation;
        campaign.checkpointPath = options.checkpoint;
        campaign.resume = options.resume;
        campaign.stopFlag = &runner::signalStopFlag();
        check::CampaignReport report;
        try {
            report = check::runCampaign(campaign);
        } catch (const std::exception &e) {
            fatal(e.what());
        }
        if (report.interrupted) {
            std::fprintf(stderr,
                         "dolsim: fuzz campaign interrupted (%llu of "
                         "%llu cases done)%s\n",
                         static_cast<unsigned long long>(
                             report.casesRun + report.casesResumed),
                         static_cast<unsigned long long>(report.cases),
                         options.checkpoint.empty()
                             ? ""
                             : "; re-run with --resume to continue");
            return interruptedExitCode();
        }
        std::fputs(report.summaryText().c_str(), stdout);
        if (report.ok() && !options.checkpoint.empty()) {
            std::error_code ec;
            std::filesystem::remove(options.checkpoint, ec);
        }
        return report.ok() ? 0 : 1;
    }

    if (options.fuzzMulticore > 0) {
        check::MulticoreCampaignOptions campaign;
        campaign.cases = options.fuzzMulticore;
        campaign.seed = options.fuzzSeed;
        campaign.mutation = *mutation;
        const check::MulticoreCampaignReport report =
            check::runMulticoreCampaign(campaign);
        std::fputs(report.summaryText().c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    if (options.fuzzAdaptive > 0) {
        if (*mutation != check::Mutation::kNone &&
            *mutation != check::Mutation::kDegreeRampStuck) {
            fatal("--fuzz-adaptive self-tests support --fuzz-mutate "
                  "degstick only");
        }
        check::AdaptiveCampaignOptions campaign;
        campaign.cases = options.fuzzAdaptive;
        campaign.seed = options.fuzzSeed;
        campaign.mutation = *mutation;
        const check::AdaptiveCampaignReport report =
            check::runAdaptiveCampaign(campaign);
        std::fputs(report.summaryText().c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    SimConfig config;
    config.maxInstrs = options.instrs;

    if (!options.record.empty()) {
        const WorkloadSpec &spec = findWorkload(options.workloads[0]);
        MemoryImage image;
        auto kernel = spec.factory(image);
        const std::uint64_t written =
            recordTrace(*kernel, options.record, options.instrs);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(written),
                    spec.name.c_str(), options.record.c_str());
        return 0;
    }

    RunOptions run_options;
    if (options.dest == "l1")
        run_options.forceDest = kL1;
    else if (options.dest == "l2")
        run_options.forceDest = kL2;
    else if (options.dest == "stratified")
        run_options.oracleDest = true;
    else if (!options.dest.empty())
        fatal("bad --dest value: " + options.dest);

    run_options.adaptiveCoordinator = options.adaptiveCoordinator;

    std::vector<WorkloadSpec> specs;
    if (!options.traceIn.empty()) {
        const std::string path = options.traceIn;
        specs.push_back({"trace:" + champSimTraceStem(path), "trace",
                         [path](MemoryImage &image) {
                             return std::make_unique<TraceIngestKernel>(
                                 image, path);
                         }});
    } else if (!options.replay.empty()) {
        const std::string path = options.replay;
        specs.push_back(
            {"replay:" + path, "trace", [path](MemoryImage &image) {
                 return std::make_unique<TraceKernel>(image, path);
             }});
    } else {
        for (const std::string &workload : options.workloads)
            specs.push_back(findWorkload(workload));
    }

    run_options.collectCounters = options.counters;

    runner::installStopHandlers();
    runner::FaultPlan fault_plan;
    if (!options.faultPlanSpec.empty()) {
        std::string error;
        if (!runner::FaultPlan::parse(options.faultPlanSpec,
                                      fault_plan, &error))
            fatal("bad --fault-plan: " + error);
    }

    runner::SweepOptions sweep_options;
    sweep_options.jobs = options.jobs;
    sweep_options.progress = !options.quiet;
    sweep_options.checkpointPath = options.checkpoint;
    sweep_options.resume = options.resume;
    sweep_options.cellTimeoutMs =
        static_cast<double>(options.cellTimeoutMs);
    sweep_options.retries = static_cast<unsigned>(options.retries);
    sweep_options.retryBackoffMs =
        static_cast<double>(options.retryBackoffMs);
    // Cells that exhaust their retry budget land in the document's
    // failed_cells section instead of aborting the whole sweep.
    sweep_options.onError =
        runner::SweepOptions::OnError::kQuarantine;
    sweep_options.stopFlag = &runner::signalStopFlag();
    if (!fault_plan.empty())
        sweep_options.faultPlan = &fault_plan;
    runner::SweepRunner sweep(config, sweep_options);
    const std::string variant =
        options.dest.empty() ? "" : ":" + options.dest;
    const bool single_cell =
        specs.size() == 1 && options.prefetchers.size() == 1;
    if (!options.mixes.empty()) {
        // Contention scenarios: one job per (mix, arbitration). The
        // job runs the solo baselines and the contended mix itself;
        // the row's counters carry per-core attribution + fairness.
        for (const std::string &mix_name : options.mixes) {
            const ContentionMix &mix = findContentionMix(mix_name);
            for (const std::string &arb_name : options.arbitrations) {
                ArbitrationPolicy policy;
                if (!arbitrationFromName(arb_name, policy))
                    fatal("bad --arbitration value: " + arb_name);
                sweep.addJob(
                    "mix:" + mix.name,
                    [&mix, policy](ExperimentRunner &runner) {
                        SimConfig job_config = runner.config();
                        job_config.mem.dram.arbitration = policy;
                        const ContentionOutcome outcome =
                            runContentionScenario(job_config, mix);
                        return std::vector<RunOutput>{
                            contentionRunOutput(outcome, mix)};
                    },
                    ":arb=" + arb_name);
            }
        }
    } else if (options.trace.empty()) {
        if (options.seedVariants) {
            // K grid copies under variants :s0..:sK-1. Each variant
            // changes the cell key, hence the per-cell seed — K
            // statistically independent replicas of the whole grid.
            for (std::uint64_t v = 0; v < options.seedVariants; ++v)
                sweep.addGrid(specs, options.prefetchers, run_options,
                              variant + ":s" + std::to_string(v));
        } else {
            sweep.addGrid(specs, options.prefetchers, run_options,
                          variant);
        }
    } else {
        // Tracing: each cell gets its own private file. A single cell
        // writes exactly --trace FILE; multi-cell sweeps derive
        // FILE.<workload>.<prefetcher><variant> per cell so parallel
        // jobs never share a writer (the determinism contract).
        for (const WorkloadSpec &spec : specs) {
            for (const std::string &prefetcher : options.prefetchers) {
                RunOptions cell = run_options;
                cell.tracePath =
                    single_cell ? options.trace
                                : runner::cellTracePath(options.trace,
                                                        spec.name,
                                                        prefetcher,
                                                        variant);
                sweep.addCell(spec, prefetcher, std::move(cell),
                              variant);
            }
        }
    }

    if (options.fleetWorker) {
        // One leased cell range; the coordinator reads our journal
        // and exit code. No table/JSON output — the merge does that.
        sweep_options.progress = false;
        fleet::WorkerOptions worker;
        worker.leaseDir = options.leaseDir;
        worker.leaseId = options.leaseId;
        std::string error;
        const int code =
            fleet::runFleetWorker(sweep, sweep_options, worker,
                                  &error);
        if (code == fleet::kWorkerSetupError)
            std::fprintf(stderr, "dolsim: %s\n", error.c_str());
        return code;
    }

    if (options.fleet) {
        fleet::FleetOptions fleet_options;
        fleet_options.leaseDir = options.leaseDir.empty()
                                     ? options.json + ".leases"
                                     : options.leaseDir;
        fleet_options.workers =
            static_cast<unsigned>(options.fleetWorkers);
        fleet_options.leaseTtlMs = options.leaseTtlMs;
        fleet_options.outputPath = options.json;
        fleet_options.verbose = !options.quiet;
        fleet_options.stopFlag = &runner::signalStopFlag();

        // Workers rebuild the exact same grid from explicit
        // arguments (suites were already expanded into --workload).
        const auto join = [](const std::vector<std::string> &parts) {
            std::string out;
            for (const std::string &part : parts) {
                if (!out.empty())
                    out += ",";
                out += part;
            }
            return out;
        };
        std::vector<std::string> base_args{
            "dolsim",      "--fleet-worker",
            "--lease-dir", fleet_options.leaseDir,
            "--workload",  join(options.workloads),
            "--prefetcher", join(options.prefetchers),
            "--instrs",    std::to_string(options.instrs),
            "--jobs",      "1",
            "--quiet"};
        const auto push_flag = [&](const char *flag,
                                   const std::string &value) {
            base_args.push_back(flag);
            base_args.push_back(value);
        };
        if (!options.dest.empty())
            push_flag("--dest", options.dest);
        if (options.adaptiveCoordinator)
            push_flag("--coordinator", "adaptive");
        if (options.counters)
            base_args.push_back("--counters");
        if (options.seedVariants)
            push_flag("--seed-variants",
                      std::to_string(options.seedVariants));
        if (options.cellTimeoutMs)
            push_flag("--cell-timeout",
                      std::to_string(options.cellTimeoutMs));
        if (options.retries)
            push_flag("--retries", std::to_string(options.retries));
        if (options.retryBackoffMs != 100)
            push_flag("--retry-backoff-ms",
                      std::to_string(options.retryBackoffMs));

        const auto spawn =
            [&](const fleet::LeaseGrant &grant) -> pid_t {
            std::vector<std::string> args = base_args;
            args.push_back("--lease-id");
            args.push_back(std::to_string(grant.leaseId));
            // Fault injection is a generation-0 affair: a re-granted
            // range must not re-trip the fault it died of.
            if (grant.generation == 0 &&
                !options.faultPlanSpec.empty()) {
                args.push_back("--fault-plan");
                args.push_back(options.faultPlanSpec);
            }
            const pid_t pid = fork();
            if (pid != 0)
                return pid;
            std::vector<char *> argvv;
            argvv.reserve(args.size() + 1);
            for (std::string &a : args)
                argvv.push_back(a.data());
            argvv.push_back(nullptr);
            execv("/proc/self/exe", argvv.data());
            _exit(127);
        };

        fleet::FleetCoordinator coordinator(sweep.plan(),
                                            fleet_options, spawn);
        runner::SweepMeta meta;
        meta.generator = "dolsim";
        meta.maxInstrs = options.instrs;
        const fleet::FleetReport fleet_report =
            coordinator.run(std::move(meta));
        if (fleet_report.interrupted) {
            std::fprintf(stderr, "dolsim: %s\n",
                         fleet_report.error.c_str());
            return interruptedExitCode();
        }
        if (!fleet_report.ok)
            fatal(fleet_report.error);
        if (!options.quiet) {
            std::fprintf(
                stderr,
                "fleet: %u lease(s) granted (%u completed, %u "
                "expired), %u worker(s) spawned, merged %llu cells "
                "(%llu failed, %llu duplicates) into %s\n",
                fleet_report.leasesGranted,
                fleet_report.leasesCompleted,
                fleet_report.leasesExpired,
                fleet_report.workersSpawned,
                static_cast<unsigned long long>(
                    fleet_report.merge.mergedCells),
                static_cast<unsigned long long>(
                    fleet_report.merge.failedCells),
                static_cast<unsigned long long>(
                    fleet_report.merge.duplicatesDiscarded),
                options.json.c_str());
        }
        return fleet_report.merge.failedCells ? 3 : 0;
    }

    runner::SweepRunner::Report report;
    try {
        report = sweep.run();
    } catch (const std::exception &e) {
        fatal(e.what());
    }

    if (report.interrupted) {
        // Partial run: keep the journal, write no outputs (a resumed
        // run produces the complete, byte-identical document).
        std::fprintf(
            stderr, "dolsim: sweep interrupted%s\n",
            options.checkpoint.empty()
                ? ""
                : "; re-run with --resume to continue from the "
                  "checkpoint");
        return interruptedExitCode();
    }

    for (const runner::FailedCell &cell : report.meta.failedCells) {
        std::fprintf(stderr,
                     "dolsim: cell %s failed after %u attempt%s "
                     "(%s): %s\n",
                     cell.label.c_str(), cell.attempts,
                     cell.attempts == 1 ? "" : "s", cell.kind.c_str(),
                     cell.error.c_str());
    }

    if (options.csv) {
        std::fputs(report.store.toCsv().c_str(), stdout);
    } else {
        TextTable table({"workload", "prefetcher", "speedup", "scope",
                         "accL1", "covL1", "traffic"});
        for (const runner::MetricsRow &row : report.store.rows()) {
            table.addRow({row.workload, row.prefetcher,
                          fmt("%.3f", row.speedup),
                          fmt("%.2f", row.scope),
                          fmt("%.2f", row.effAccuracyL1),
                          fmt("%.2f", row.effCoverageL1),
                          fmt("%.3f", row.trafficNormalized)});
        }
        table.print();
        if (options.counters) {
            for (const runner::MetricsRow &row : report.store.rows()) {
                std::printf("\n# counters %s/%s%s\n",
                            row.workload.c_str(),
                            row.prefetcher.c_str(),
                            row.variant.c_str());
                std::fputs(row.counters.toText().c_str(), stdout);
            }
        }
    }

    if (!options.json.empty()) {
        runner::SweepMeta meta = report.meta;
        meta.generator = "dolsim";
        if (!report.store.writeJsonFile(options.json, meta))
            fatal("cannot write " + options.json);
        if (!options.quiet) {
            std::fprintf(stderr, "wrote %s (%zu rows)\n",
                         options.json.c_str(),
                         report.store.rows().size());
        }
    }

    if (!options.checkpoint.empty() &&
        report.meta.failedCells.empty()) {
        // Complete and clean: the journal has nothing left to resume.
        std::error_code ec;
        std::filesystem::remove(options.checkpoint, ec);
    }
    return report.meta.failedCells.empty() ? 0 : 3;
}
