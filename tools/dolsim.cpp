/**
 * @file
 * dolsim — command-line experiment driver.
 *
 * Runs any (workload, prefetcher) combination and reports the paper's
 * metrics; supports sweeps over whole suites and CSV output for
 * plotting.
 *
 *   dolsim --list
 *   dolsim --workload libquantum.syn --prefetcher TPC
 *   dolsim --suite spec --prefetcher TPC,SPP,BOP --instrs 300000 --csv
 *   dolsim --workload mcf.syn --prefetcher TPC --dest l2
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "metrics/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"
#include "workloads/trace_file.hpp"

namespace
{

struct Options
{
    std::vector<std::string> workloads;
    std::vector<std::string> prefetchers{"TPC"};
    std::uint64_t instrs = 200000;
    bool csv = false;
    bool list = false;
    std::string record; ///< record first workload's trace to a file
    std::string replay; ///< replay a trace file as the workload
    std::string dest; ///< "", "l1", "l2", "stratified"
};

std::vector<std::string>
splitCommas(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(value.substr(start));
            break;
        }
        out.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
usage()
{
    std::printf(
        "usage: dolsim [options]\n"
        "  --list                     list workloads and exit\n"
        "  --workload NAME[,NAME...]  workloads to run\n"
        "  --suite NAME               spec|crono|starbench|npb|all\n"
        "  --prefetcher NAME[,...]    registry names (default TPC)\n"
        "  --instrs N                 instruction budget (default "
        "200000)\n"
        "  --dest l1|l2|stratified    force/oracle prefetch "
        "destination\n"
        "  --record FILE              record the workload's trace\n"
        "  --replay FILE              replay a recorded trace\n"
        "  --csv                      machine-readable output\n");
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                dol::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--list") {
            options.list = true;
        } else if (arg == "--workload") {
            for (const auto &name : splitCommas(next()))
                options.workloads.push_back(name);
        } else if (arg == "--suite") {
            const std::string suite = next();
            for (const auto &spec : dol::allWorkloads()) {
                if (suite == "all" || spec.suite == suite)
                    options.workloads.push_back(spec.name);
            }
            if (options.workloads.empty())
                dol::fatal("unknown suite: " + suite);
        } else if (arg == "--prefetcher") {
            options.prefetchers = splitCommas(next());
        } else if (arg == "--instrs") {
            options.instrs = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--dest") {
            options.dest = next();
        } else if (arg == "--record") {
            options.record = next();
        } else if (arg == "--replay") {
            options.replay = next();
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            usage();
            dol::fatal("unknown option: " + arg);
        }
    }
    if (options.workloads.empty())
        options.workloads.push_back("libquantum.syn");
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dol;
    const Options options = parse(argc, argv);

    if (options.list) {
        TextTable table({"workload", "suite"});
        for (const auto &spec : allWorkloads())
            table.addRow({spec.name, spec.suite});
        table.print();
        return 0;
    }

    SimConfig config;
    config.maxInstrs = options.instrs;
    ExperimentRunner runner(config);

    if (!options.record.empty()) {
        const WorkloadSpec &spec = findWorkload(options.workloads[0]);
        MemoryImage image;
        auto kernel = spec.factory(image);
        const std::uint64_t written =
            recordTrace(*kernel, options.record, options.instrs);
        std::printf("recorded %llu instructions of %s to %s\n",
                    static_cast<unsigned long long>(written),
                    spec.name.c_str(), options.record.c_str());
        return 0;
    }

    RunOptions run_options;
    if (options.dest == "l1")
        run_options.forceDest = kL1;
    else if (options.dest == "l2")
        run_options.forceDest = kL2;
    else if (options.dest == "stratified")
        run_options.oracleDest = true;
    else if (!options.dest.empty())
        fatal("bad --dest value: " + options.dest);

    if (options.csv) {
        std::printf("workload,prefetcher,baseline_ipc,ipc,speedup,"
                    "mpki,issued,scope,acc_l1,cov_l1,traffic\n");
    }

    std::vector<WorkloadSpec> specs;
    if (!options.replay.empty()) {
        const std::string path = options.replay;
        specs.push_back(
            {"replay:" + path, "trace", [path](MemoryImage &image) {
                 return std::make_unique<TraceKernel>(image, path);
             }});
    } else {
        for (const std::string &workload : options.workloads)
            specs.push_back(findWorkload(workload));
    }

    TextTable table({"workload", "prefetcher", "speedup", "scope",
                     "accL1", "covL1", "traffic"});
    for (const WorkloadSpec &spec : specs) {
        const std::string &workload = spec.name;
        for (const std::string &pf : options.prefetchers) {
            const RunOutput out = runner.run(spec, pf, run_options);
            if (options.csv) {
                std::printf(
                    "%s,%s,%.4f,%.4f,%.4f,%.2f,%llu,%.4f,%.4f,%.4f,"
                    "%.4f\n",
                    workload.c_str(), pf.c_str(), out.baselineIpc,
                    out.ipc, out.speedup(), out.baselineMpkiL1,
                    static_cast<unsigned long long>(
                        out.prefetchesIssued),
                    out.scope, out.effAccuracyL1, out.effCoverageL1,
                    out.trafficNormalized);
            } else {
                table.addRow({workload, pf, fmt("%.3f", out.speedup()),
                              fmt("%.2f", out.scope),
                              fmt("%.2f", out.effAccuracyL1),
                              fmt("%.2f", out.effCoverageL1),
                              fmt("%.3f", out.trafficNormalized)});
            }
        }
    }
    if (!options.csv)
        table.print();
    return 0;
}
