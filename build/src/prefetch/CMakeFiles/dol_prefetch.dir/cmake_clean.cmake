file(REMOVE_RECURSE
  "CMakeFiles/dol_prefetch.dir/ampm.cpp.o"
  "CMakeFiles/dol_prefetch.dir/ampm.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/bop.cpp.o"
  "CMakeFiles/dol_prefetch.dir/bop.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/fdp.cpp.o"
  "CMakeFiles/dol_prefetch.dir/fdp.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/ghb_pcdc.cpp.o"
  "CMakeFiles/dol_prefetch.dir/ghb_pcdc.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/isb.cpp.o"
  "CMakeFiles/dol_prefetch.dir/isb.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/markov.cpp.o"
  "CMakeFiles/dol_prefetch.dir/markov.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/sms.cpp.o"
  "CMakeFiles/dol_prefetch.dir/sms.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/spp.cpp.o"
  "CMakeFiles/dol_prefetch.dir/spp.cpp.o.d"
  "CMakeFiles/dol_prefetch.dir/vldp.cpp.o"
  "CMakeFiles/dol_prefetch.dir/vldp.cpp.o.d"
  "libdol_prefetch.a"
  "libdol_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
