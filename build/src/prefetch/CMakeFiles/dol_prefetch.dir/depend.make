# Empty dependencies file for dol_prefetch.
# This may be replaced when dependencies are built.
