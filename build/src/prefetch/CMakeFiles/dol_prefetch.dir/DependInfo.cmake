
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ampm.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/ampm.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/ampm.cpp.o.d"
  "/root/repo/src/prefetch/bop.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/bop.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/bop.cpp.o.d"
  "/root/repo/src/prefetch/fdp.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/fdp.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/fdp.cpp.o.d"
  "/root/repo/src/prefetch/ghb_pcdc.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/ghb_pcdc.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/ghb_pcdc.cpp.o.d"
  "/root/repo/src/prefetch/isb.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/isb.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/isb.cpp.o.d"
  "/root/repo/src/prefetch/markov.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/markov.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/markov.cpp.o.d"
  "/root/repo/src/prefetch/sms.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/sms.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/sms.cpp.o.d"
  "/root/repo/src/prefetch/spp.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/spp.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/spp.cpp.o.d"
  "/root/repo/src/prefetch/vldp.cpp" "src/prefetch/CMakeFiles/dol_prefetch.dir/vldp.cpp.o" "gcc" "src/prefetch/CMakeFiles/dol_prefetch.dir/vldp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/dol_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dol_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
