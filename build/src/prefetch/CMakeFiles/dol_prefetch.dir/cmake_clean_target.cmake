file(REMOVE_RECURSE
  "libdol_prefetch.a"
)
