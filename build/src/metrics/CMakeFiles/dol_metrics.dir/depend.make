# Empty dependencies file for dol_metrics.
# This may be replaced when dependencies are built.
