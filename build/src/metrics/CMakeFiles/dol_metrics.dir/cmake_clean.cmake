file(REMOVE_RECURSE
  "CMakeFiles/dol_metrics.dir/accounting.cpp.o"
  "CMakeFiles/dol_metrics.dir/accounting.cpp.o.d"
  "libdol_metrics.a"
  "libdol_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
