file(REMOVE_RECURSE
  "libdol_metrics.a"
)
