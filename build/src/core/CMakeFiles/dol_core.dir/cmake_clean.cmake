file(REMOVE_RECURSE
  "CMakeFiles/dol_core.dir/c1.cpp.o"
  "CMakeFiles/dol_core.dir/c1.cpp.o.d"
  "CMakeFiles/dol_core.dir/composite.cpp.o"
  "CMakeFiles/dol_core.dir/composite.cpp.o.d"
  "CMakeFiles/dol_core.dir/loop_detector.cpp.o"
  "CMakeFiles/dol_core.dir/loop_detector.cpp.o.d"
  "CMakeFiles/dol_core.dir/p1.cpp.o"
  "CMakeFiles/dol_core.dir/p1.cpp.o.d"
  "CMakeFiles/dol_core.dir/registry.cpp.o"
  "CMakeFiles/dol_core.dir/registry.cpp.o.d"
  "CMakeFiles/dol_core.dir/t2.cpp.o"
  "CMakeFiles/dol_core.dir/t2.cpp.o.d"
  "libdol_core.a"
  "libdol_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
