
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/c1.cpp" "src/core/CMakeFiles/dol_core.dir/c1.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/c1.cpp.o.d"
  "/root/repo/src/core/composite.cpp" "src/core/CMakeFiles/dol_core.dir/composite.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/composite.cpp.o.d"
  "/root/repo/src/core/loop_detector.cpp" "src/core/CMakeFiles/dol_core.dir/loop_detector.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/loop_detector.cpp.o.d"
  "/root/repo/src/core/p1.cpp" "src/core/CMakeFiles/dol_core.dir/p1.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/p1.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/dol_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/t2.cpp" "src/core/CMakeFiles/dol_core.dir/t2.cpp.o" "gcc" "src/core/CMakeFiles/dol_core.dir/t2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/dol_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dol_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/dol_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
