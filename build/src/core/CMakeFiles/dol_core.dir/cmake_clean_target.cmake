file(REMOVE_RECURSE
  "libdol_core.a"
)
