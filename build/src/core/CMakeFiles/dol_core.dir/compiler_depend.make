# Empty compiler generated dependencies file for dol_core.
# This may be replaced when dependencies are built.
