file(REMOVE_RECURSE
  "libdol_sim.a"
)
