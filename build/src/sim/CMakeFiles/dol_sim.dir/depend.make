# Empty dependencies file for dol_sim.
# This may be replaced when dependencies are built.
