file(REMOVE_RECURSE
  "CMakeFiles/dol_sim.dir/experiment.cpp.o"
  "CMakeFiles/dol_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/dol_sim.dir/multicore.cpp.o"
  "CMakeFiles/dol_sim.dir/multicore.cpp.o.d"
  "CMakeFiles/dol_sim.dir/simulator.cpp.o"
  "CMakeFiles/dol_sim.dir/simulator.cpp.o.d"
  "libdol_sim.a"
  "libdol_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
