# Empty compiler generated dependencies file for dol_mem.
# This may be replaced when dependencies are built.
