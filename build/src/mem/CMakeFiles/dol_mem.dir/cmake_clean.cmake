file(REMOVE_RECURSE
  "CMakeFiles/dol_mem.dir/cache.cpp.o"
  "CMakeFiles/dol_mem.dir/cache.cpp.o.d"
  "CMakeFiles/dol_mem.dir/dram.cpp.o"
  "CMakeFiles/dol_mem.dir/dram.cpp.o.d"
  "CMakeFiles/dol_mem.dir/memory_system.cpp.o"
  "CMakeFiles/dol_mem.dir/memory_system.cpp.o.d"
  "libdol_mem.a"
  "libdol_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
