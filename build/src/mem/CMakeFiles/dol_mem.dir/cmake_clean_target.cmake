file(REMOVE_RECURSE
  "libdol_mem.a"
)
