file(REMOVE_RECURSE
  "libdol_cpu.a"
)
