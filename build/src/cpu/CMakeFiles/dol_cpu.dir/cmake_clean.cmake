file(REMOVE_RECURSE
  "CMakeFiles/dol_cpu.dir/core.cpp.o"
  "CMakeFiles/dol_cpu.dir/core.cpp.o.d"
  "libdol_cpu.a"
  "libdol_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
