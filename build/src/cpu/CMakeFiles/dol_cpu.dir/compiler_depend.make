# Empty compiler generated dependencies file for dol_cpu.
# This may be replaced when dependencies are built.
