
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/irregular_kernels.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/irregular_kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/irregular_kernels.cpp.o.d"
  "/root/repo/src/workloads/mixed_kernels.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/mixed_kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/mixed_kernels.cpp.o.d"
  "/root/repo/src/workloads/pointer_kernels.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/pointer_kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/pointer_kernels.cpp.o.d"
  "/root/repo/src/workloads/stream_kernels.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/stream_kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/stream_kernels.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/trace_file.cpp" "src/workloads/CMakeFiles/dol_workloads.dir/trace_file.cpp.o" "gcc" "src/workloads/CMakeFiles/dol_workloads.dir/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/dol_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dol_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
