file(REMOVE_RECURSE
  "CMakeFiles/dol_workloads.dir/irregular_kernels.cpp.o"
  "CMakeFiles/dol_workloads.dir/irregular_kernels.cpp.o.d"
  "CMakeFiles/dol_workloads.dir/mixed_kernels.cpp.o"
  "CMakeFiles/dol_workloads.dir/mixed_kernels.cpp.o.d"
  "CMakeFiles/dol_workloads.dir/pointer_kernels.cpp.o"
  "CMakeFiles/dol_workloads.dir/pointer_kernels.cpp.o.d"
  "CMakeFiles/dol_workloads.dir/stream_kernels.cpp.o"
  "CMakeFiles/dol_workloads.dir/stream_kernels.cpp.o.d"
  "CMakeFiles/dol_workloads.dir/suite.cpp.o"
  "CMakeFiles/dol_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/dol_workloads.dir/trace_file.cpp.o"
  "CMakeFiles/dol_workloads.dir/trace_file.cpp.o.d"
  "libdol_workloads.a"
  "libdol_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dol_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
