file(REMOVE_RECURSE
  "libdol_workloads.a"
)
