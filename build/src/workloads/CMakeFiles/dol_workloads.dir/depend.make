# Empty dependencies file for dol_workloads.
# This may be replaced when dependencies are built.
