# Empty dependencies file for custom_component.
# This may be replaced when dependencies are built.
