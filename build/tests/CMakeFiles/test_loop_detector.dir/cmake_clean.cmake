file(REMOVE_RECURSE
  "CMakeFiles/test_loop_detector.dir/test_loop_detector.cpp.o"
  "CMakeFiles/test_loop_detector.dir/test_loop_detector.cpp.o.d"
  "test_loop_detector"
  "test_loop_detector.pdb"
  "test_loop_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
