# Empty dependencies file for test_p1.
# This may be replaced when dependencies are built.
