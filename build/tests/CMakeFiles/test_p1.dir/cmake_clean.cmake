file(REMOVE_RECURSE
  "CMakeFiles/test_p1.dir/test_p1.cpp.o"
  "CMakeFiles/test_p1.dir/test_p1.cpp.o.d"
  "test_p1"
  "test_p1.pdb"
  "test_p1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
