
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_composite.cpp" "tests/CMakeFiles/test_composite.dir/test_composite.cpp.o" "gcc" "tests/CMakeFiles/test_composite.dir/test_composite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dol_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/dol_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dol_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dol_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dol_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dol_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
