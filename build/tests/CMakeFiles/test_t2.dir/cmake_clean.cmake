file(REMOVE_RECURSE
  "CMakeFiles/test_t2.dir/test_t2.cpp.o"
  "CMakeFiles/test_t2.dir/test_t2.cpp.o.d"
  "test_t2"
  "test_t2.pdb"
  "test_t2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_t2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
