# Empty dependencies file for test_t2.
# This may be replaced when dependencies are built.
