# Empty dependencies file for test_c1.
# This may be replaced when dependencies are built.
