file(REMOVE_RECURSE
  "CMakeFiles/test_c1.dir/test_c1.cpp.o"
  "CMakeFiles/test_c1.dir/test_c1.cpp.o.d"
  "test_c1"
  "test_c1.pdb"
  "test_c1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
