# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_loop_detector[1]_include.cmake")
include("/root/repo/build/tests/test_t2[1]_include.cmake")
include("/root/repo/build/tests/test_p1[1]_include.cmake")
include("/root/repo/build/tests/test_c1[1]_include.cmake")
include("/root/repo/build/tests/test_composite[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_prefetchers[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
