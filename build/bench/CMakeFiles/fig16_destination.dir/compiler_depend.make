# Empty compiler generated dependencies file for fig16_destination.
# This may be replaced when dependencies are built.
