file(REMOVE_RECURSE
  "CMakeFiles/fig16_destination.dir/fig16_destination.cpp.o"
  "CMakeFiles/fig16_destination.dir/fig16_destination.cpp.o.d"
  "fig16_destination"
  "fig16_destination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_destination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
