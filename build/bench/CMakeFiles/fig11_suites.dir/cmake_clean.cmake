file(REMOVE_RECURSE
  "CMakeFiles/fig11_suites.dir/fig11_suites.cpp.o"
  "CMakeFiles/fig11_suites.dir/fig11_suites.cpp.o.d"
  "fig11_suites"
  "fig11_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
