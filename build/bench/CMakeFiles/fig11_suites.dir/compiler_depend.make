# Empty compiler generated dependencies file for fig11_suites.
# This may be replaced when dependencies are built.
