# Empty compiler generated dependencies file for fig10_accuracy_scope_all.
# This may be replaced when dependencies are built.
