file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_scope_all.dir/fig10_accuracy_scope_all.cpp.o"
  "CMakeFiles/fig10_accuracy_scope_all.dir/fig10_accuracy_scope_all.cpp.o.d"
  "fig10_accuracy_scope_all"
  "fig10_accuracy_scope_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_scope_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
