file(REMOVE_RECURSE
  "CMakeFiles/fig13_stratified.dir/fig13_stratified.cpp.o"
  "CMakeFiles/fig13_stratified.dir/fig13_stratified.cpp.o.d"
  "fig13_stratified"
  "fig13_stratified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stratified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
