# Empty compiler generated dependencies file for fig13_stratified.
# This may be replaced when dependencies are built.
