# Empty compiler generated dependencies file for fig12_incremental.
# This may be replaced when dependencies are built.
