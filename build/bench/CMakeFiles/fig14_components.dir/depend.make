# Empty dependencies file for fig14_components.
# This may be replaced when dependencies are built.
