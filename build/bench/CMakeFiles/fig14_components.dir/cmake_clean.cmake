file(REMOVE_RECURSE
  "CMakeFiles/fig14_components.dir/fig14_components.cpp.o"
  "CMakeFiles/fig14_components.dir/fig14_components.cpp.o.d"
  "fig14_components"
  "fig14_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
