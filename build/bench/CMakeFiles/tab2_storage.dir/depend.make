# Empty dependencies file for tab2_storage.
# This may be replaced when dependencies are built.
