file(REMOVE_RECURSE
  "CMakeFiles/tab2_storage.dir/tab2_storage.cpp.o"
  "CMakeFiles/tab2_storage.dir/tab2_storage.cpp.o.d"
  "tab2_storage"
  "tab2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
