# Empty compiler generated dependencies file for fig01_accuracy_scope.
# This may be replaced when dependencies are built.
