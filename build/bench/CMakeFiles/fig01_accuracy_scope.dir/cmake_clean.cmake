file(REMOVE_RECURSE
  "CMakeFiles/fig01_accuracy_scope.dir/fig01_accuracy_scope.cpp.o"
  "CMakeFiles/fig01_accuracy_scope.dir/fig01_accuracy_scope.cpp.o.d"
  "fig01_accuracy_scope"
  "fig01_accuracy_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_accuracy_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
