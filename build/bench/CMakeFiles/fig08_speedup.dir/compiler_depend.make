# Empty compiler generated dependencies file for fig08_speedup.
# This may be replaced when dependencies are built.
