file(REMOVE_RECURSE
  "CMakeFiles/abl_t2_design.dir/abl_t2_design.cpp.o"
  "CMakeFiles/abl_t2_design.dir/abl_t2_design.cpp.o.d"
  "abl_t2_design"
  "abl_t2_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_t2_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
