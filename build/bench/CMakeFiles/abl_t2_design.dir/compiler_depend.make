# Empty compiler generated dependencies file for abl_t2_design.
# This may be replaced when dependencies are built.
