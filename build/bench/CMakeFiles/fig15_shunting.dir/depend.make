# Empty dependencies file for fig15_shunting.
# This may be replaced when dependencies are built.
