file(REMOVE_RECURSE
  "CMakeFiles/fig15_shunting.dir/fig15_shunting.cpp.o"
  "CMakeFiles/fig15_shunting.dir/fig15_shunting.cpp.o.d"
  "fig15_shunting"
  "fig15_shunting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_shunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
