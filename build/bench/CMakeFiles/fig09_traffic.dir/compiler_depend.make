# Empty compiler generated dependencies file for fig09_traffic.
# This may be replaced when dependencies are built.
