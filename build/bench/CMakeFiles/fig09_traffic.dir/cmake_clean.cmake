file(REMOVE_RECURSE
  "CMakeFiles/fig09_traffic.dir/fig09_traffic.cpp.o"
  "CMakeFiles/fig09_traffic.dir/fig09_traffic.cpp.o.d"
  "fig09_traffic"
  "fig09_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
