file(REMOVE_RECURSE
  "CMakeFiles/dolsim.dir/dolsim.cpp.o"
  "CMakeFiles/dolsim.dir/dolsim.cpp.o.d"
  "dolsim"
  "dolsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
