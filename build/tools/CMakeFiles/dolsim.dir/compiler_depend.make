# Empty compiler generated dependencies file for dolsim.
# This may be replaced when dependencies are built.
